#include <gtest/gtest.h>

#include "circuits/benchmarks.h"
#include "circuits/random_dag.h"
#include "netlist/optimize.h"
#include "netlist/simulate.h"
#include "util/rng.h"

namespace nanomap {
namespace {

// Random-simulation equivalence between the original and swept networks on
// the surviving interface.
void expect_sweep_equivalent(const LutNetwork& original,
                             const SweepResult& swept, int steps = 10) {
  Simulator a(original);
  Simulator b(swept.net);
  a.reset(false);
  b.reset(false);
  std::vector<int> inputs, outputs;
  for (int id = 0; id < original.size(); ++id) {
    if (original.node(id).kind == NodeKind::kInput) inputs.push_back(id);
    if (original.node(id).kind == NodeKind::kOutput) outputs.push_back(id);
  }
  Rng rng(17);
  for (int s = 0; s < steps; ++s) {
    for (int pi : inputs) {
      bool v = rng.next_bool();
      a.set_input(pi, v);
      b.set_input(swept.remap[static_cast<std::size_t>(pi)], v);
    }
    a.step();
    b.step();
    a.evaluate();
    b.evaluate();
    for (int po : outputs) {
      int npo = swept.remap[static_cast<std::size_t>(po)];
      ASSERT_GE(npo, 0);
      ASSERT_EQ(b.value(npo), a.value(po))
          << "step " << s << " output " << original.node(po).name;
    }
  }
}

TEST(Sweep, RemovesDeadLuts) {
  LutNetwork net;
  int a = net.add_input("a");
  int b = net.add_input("b");
  int used = net.add_lut("used", {a, b}, 0x6, 0);
  net.add_lut("dead", {a, b}, 0x8, 0);
  int dead2 = net.add_lut("dead2", {used, a}, 0x6, 0);
  (void)dead2;
  net.add_output("o", used);
  net.compute_levels();

  SweepResult r = sweep(net);
  EXPECT_EQ(r.stats.dead_luts_removed, 2);
  EXPECT_EQ(r.net.num_luts(), 1);
  expect_sweep_equivalent(net, r);
}

TEST(Sweep, MergesStructuralDuplicates) {
  LutNetwork net;
  int a = net.add_input("a");
  int b = net.add_input("b");
  int x1 = net.add_lut("x1", {a, b}, 0x6, 0);
  int x2 = net.add_lut("x2", {a, b}, 0x6, 0);  // duplicate of x1
  int y = net.add_lut("y", {x1, x2}, 0x8, 0);  // AND(x, x) = x
  net.add_output("o", y);
  net.compute_levels();

  SweepResult r = sweep(net);
  EXPECT_EQ(r.stats.duplicates_merged, 1);
  EXPECT_EQ(r.net.num_luts(), 2);
  // Both old ids map to the same survivor.
  EXPECT_EQ(r.remap[static_cast<std::size_t>(x1)],
            r.remap[static_cast<std::size_t>(x2)]);
  expect_sweep_equivalent(net, r);
}

TEST(Sweep, FoldsConstants) {
  LutNetwork net;
  int a = net.add_input("a");
  int b = net.add_input("b");
  // c = a AND (NOT a) = const 0; y = b XOR c should reduce to buffer(b).
  int c = net.add_lut("c", {a, a}, 0x2, 0);  // a & !a pattern via minterm 1
  int y = net.add_lut("y", {b, c}, 0x6, 0);
  net.add_output("o", y);
  net.compute_levels();

  // truth 0x2 over (a, a): minterm 1 = (a=1, a=0) unreachable; minterm 0
  // and 3 are 0 -> the LUT is constant 0 on all *reachable* minterms but
  // not syntactically constant. Use a syntactic constant instead:
  LutNetwork net2;
  int a2 = net2.add_input("a");
  int b2 = net2.add_input("b");
  int c2 = net2.add_lut("c", {a2}, 0x0, 0);  // constant 0
  int y2 = net2.add_lut("y", {b2, c2}, 0x6, 0);
  net2.add_output("o", y2);
  net2.compute_levels();
  SweepResult r = sweep(net2);
  EXPECT_GE(r.stats.constants_folded, 1);
  expect_sweep_equivalent(net2, r);
  (void)c;
  (void)y;
  (void)net;
}

TEST(Sweep, ConstantDrivingOutputSurvives) {
  LutNetwork net;
  int a = net.add_input("a");
  int one = net.add_lut("one", {a}, 0x3, 0);  // constant 1
  net.add_output("o", one);
  net.compute_levels();
  SweepResult r = sweep(net);
  expect_sweep_equivalent(net, r);
  Simulator sim(r.net);
  sim.set_input(r.remap[static_cast<std::size_t>(a)], false);
  sim.evaluate();
  EXPECT_TRUE(sim.value(r.remap[static_cast<std::size_t>(one)]));
}

TEST(Sweep, DeadFlipFlopChainRemoved) {
  LutNetwork net;
  int a = net.add_input("a", 0);
  int live_ff = net.add_flipflop("live", 0);
  int dead_ff = net.add_flipflop("dead", 0);
  net.set_flipflop_input(live_ff, a);
  net.set_flipflop_input(dead_ff, a);
  int y = net.add_lut("y", {live_ff, a}, 0x6, 0);
  net.add_output("o", y);
  net.compute_levels();

  SweepResult r = sweep(net);
  EXPECT_EQ(r.stats.dead_flipflops_removed, 1);
  EXPECT_EQ(r.net.num_flipflops(), 1);
  expect_sweep_equivalent(net, r);
}

TEST(Sweep, SelfHoldingRegisterSurvivesWhenRead) {
  // FIR-style coefficient register: q -> q (hold) and q feeds live logic.
  LutNetwork net;
  int a = net.add_input("a", 0);
  int q = net.add_flipflop("coeff", 0);
  net.set_flipflop_input(q, q);
  int y = net.add_lut("y", {q, a}, 0x8, 0);
  net.add_output("o", y);
  net.compute_levels();
  SweepResult r = sweep(net);
  EXPECT_EQ(r.net.num_flipflops(), 1);
  EXPECT_EQ(r.stats.dead_flipflops_removed, 0);
}

TEST(Sweep, GeneratedBenchmarkIsNearlyClean) {
  // The generators emit almost no redundancy (the sweep finds a couple of
  // duplicated first-level gates at most), and never lose function.
  Design d = make_ex1(6);
  SweepResult r = sweep(d.net);
  EXPECT_LE(r.stats.total_removed(), 4);
  EXPECT_GE(r.net.num_luts(), d.net.num_luts() - 4);
  EXPECT_EQ(r.net.num_flipflops(), d.net.num_flipflops());
  expect_sweep_equivalent(d.net, r);
}

class SweepRandom : public ::testing::TestWithParam<int> {};

TEST_P(SweepRandom, EquivalentOnRandomDesigns) {
  RandomDagSpec spec;
  spec.num_planes = 1;
  spec.luts_per_plane = 60 + GetParam() * 9;
  spec.depth = 7;
  spec.seed = static_cast<std::uint64_t>(GetParam()) * 31 + 7;
  Design d = make_random_design(spec);
  SweepResult r = sweep(d.net);
  // Random designs have few outputs: most logic is dead and must go.
  EXPECT_GT(r.stats.dead_luts_removed, 0);
  expect_sweep_equivalent(d.net, r);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SweepRandom, ::testing::Range(0, 6));

TEST(Sweep, ModuleTagsPreserved) {
  Design d = make_ex1(4);
  SweepResult r = sweep(d.net);
  int tagged = 0;
  for (const LutNode& n : r.net.nodes())
    if (n.kind == NodeKind::kLut && n.module_id >= 0) ++tagged;
  int tagged_orig = 0;
  for (const LutNode& n : d.net.nodes())
    if (n.kind == NodeKind::kLut && n.module_id >= 0) ++tagged_orig;
  EXPECT_GE(tagged, tagged_orig - r.stats.total_removed());
  EXPECT_GT(tagged, 0);
}

}  // namespace
}  // namespace nanomap
