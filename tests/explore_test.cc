// Determinism contract of the parallel design-space explorer
// (flow/explore.h, DESIGN.md §5h): run_nanomap_explore folds candidate
// results identically in serial and parallel mode, at any thread count,
// with warm starts on or off, and with a fault armed in one candidate —
// winner, Pareto front, per-candidate bytes and the merged trail all
// byte-identical. Plus: the explore RunReport section round-trips through
// the real JSON parser, and a traced sweep only hits registered sites.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "bitstream/bitmap.h"
#include "circuits/benchmarks.h"
#include "circuits/random_dag.h"
#include "flow/explore.h"
#include "util/json.h"
#include "util/trace.h"

namespace nanomap {
namespace {

FlowOptions base_options() {
  FlowOptions opts;
  opts.arch = ArchParams::paper_instance_unbounded_k();
  opts.seed = 3;
  return opts;
}

// Strictly wider channels, otherwise identical: chains onto the base
// candidate of the same level (schedule reuse + in-place widening).
ArchParams wider(const ArchParams& base) {
  ArchParams arch = base;
  arch.len1_tracks += 2;
  arch.len4_tracks += 1;
  arch.global_tracks += 1;
  return arch;
}

Design small_random_design(std::uint64_t seed) {
  RandomDagSpec spec;
  spec.num_planes = 1;
  spec.luts_per_plane = 40;
  spec.depth = 6;
  spec.regs_per_plane = 4;
  spec.seed = seed;
  return make_random_design(spec);
}

// Byte fingerprint of one candidate's physical output (the
// determinism_test idiom: memcpy'd doubles, stable bitmap serialization).
std::string result_fingerprint(const FlowResult& r) {
  std::string fp;
  auto add_int = [&](long long v) {
    char buf[sizeof v];
    std::memcpy(buf, &v, sizeof v);
    fp.append(buf, sizeof v);
  };
  auto add_double = [&](double v) {
    char buf[sizeof v];
    std::memcpy(buf, &v, sizeof v);
    fp.append(buf, sizeof v);
  };
  add_int(r.feasible ? 1 : 0);
  add_int(static_cast<long long>(r.error_kind));
  add_int(r.num_les);
  add_int(r.clustered.num_cycles);
  add_double(r.delay_ns);
  add_int(r.placement.placement.grid.width);
  add_int(r.placement.placement.grid.height);
  for (int site : r.placement.placement.site_of_smb) add_int(site);
  add_int(static_cast<long long>(r.routing.nets.size()));
  for (const NetRoute& nr : r.routing.nets) {
    add_int(nr.net_index);
    for (int s : nr.sink_smbs) add_int(s);
    for (double d : nr.sink_delay_ps) add_double(d);
    for (int n : nr.wire_nodes) add_int(n);
  }
  std::vector<std::uint8_t> bytes = serialize_bitmap(r.bitmap);
  fp.append(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  return fp;
}

// The whole fold: every candidate's bytes, the winner, the Pareto front,
// the warm-start decisions, and the merged diagnostic trail.
std::string fold_fingerprint(const ExploreResult& ex) {
  std::string fp;
  auto add_int = [&](long long v) {
    char buf[sizeof v];
    std::memcpy(buf, &v, sizeof v);
    fp.append(buf, sizeof v);
  };
  add_int(ex.winner_index);
  for (int idx : ex.explore.pareto) add_int(idx);
  for (const FlowResult& r : ex.results) fp += result_fingerprint(r);
  add_int(ex.explore.warm_starts);
  for (const ExploreCandidateOutcome& o : ex.explore.outcomes) {
    add_int(o.warm_schedule ? 1 : 0);
    add_int(o.warm_route_state ? 1 : 0);
    add_int(o.on_pareto_front ? 1 : 0);
    add_int(o.winner ? 1 : 0);
    fp += o.label + "|" + o.error_kind;
  }
  for (const FlowEvent& e : ex.report.events) {
    fp += e.stage + "|" + e.action + "|" + e.detail;
    add_int(e.level);
    add_int(e.attempt);
    add_int(static_cast<long long>(e.kind));
  }
  return fp;
}

ExploreResult run_explore(const Design& d, const FlowOptions& flow,
                          ExploreOptions eopts, ExploreMode mode,
                          int threads) {
  FlowOptions f = flow;
  f.threads = threads;
  eopts.mode = mode;
  return run_nanomap_explore(d, f, eopts);
}

// --- single candidate == forced-level flow ---------------------------------

TEST(Explore, SingleCandidateMatchesForcedLevelFlow) {
  Design d = make_benchmark("ex1");
  FlowOptions flow = base_options();
  ExploreOptions eopts;
  eopts.levels = {2};
  ExploreResult ex = run_nanomap_explore(d, flow, eopts);
  ASSERT_TRUE(ex.feasible);
  EXPECT_EQ(ex.winner_index, 0);
  ASSERT_EQ(ex.results.size(), 1u);
  EXPECT_TRUE(ex.explore.outcomes[0].winner);
  EXPECT_TRUE(ex.explore.outcomes[0].on_pareto_front);

  FlowOptions forced = flow;
  forced.forced_folding_level = 2;
  FlowResult want = run_nanomap(d, forced);
  ASSERT_TRUE(want.feasible) << want.message;
  EXPECT_EQ(result_fingerprint(ex.winner), result_fingerprint(want));
}

// --- serial vs parallel vs thread count ------------------------------------

TEST(Explore, SerialParallelIdenticalAcrossSeeds) {
  // The differential sweep: 6 seeds x {L1, L2, no-fold}; the whole fold
  // must be byte-identical between serial mode on one thread and
  // parallel mode on four.
  for (std::uint64_t seed : {11u, 22u, 33u, 44u, 55u, 66u}) {
    Design d = small_random_design(seed);
    FlowOptions flow = base_options();
    ExploreOptions eopts;
    eopts.levels = {1, 2, 0};
    ExploreResult serial =
        run_explore(d, flow, eopts, ExploreMode::kSerial, 1);
    ExploreResult parallel =
        run_explore(d, flow, eopts, ExploreMode::kParallel, 4);
    ASSERT_TRUE(serial.feasible) << "seed " << seed;  // real physical runs
    EXPECT_EQ(fold_fingerprint(serial), fold_fingerprint(parallel))
        << "seed " << seed;
    EXPECT_EQ(serial.winner_index, parallel.winner_index) << "seed " << seed;
  }
}

TEST(Explore, ThreadCountInvariantReportBytes) {
  // Same mode, threads 1 vs 4: the full report JSON must agree byte for
  // byte once run.threads (which records the request) is normalized.
  Design d = make_benchmark("ex1");
  FlowOptions flow = base_options();
  ExploreOptions eopts;
  eopts.levels = {1, 2, 0};
  FabricVariant v;
  v.label = "wide";
  v.arch = wider(flow.arch);
  eopts.variants.push_back(v);

  ExploreResult t1 = run_explore(d, flow, eopts, ExploreMode::kParallel, 1);
  ExploreResult t4 = run_explore(d, flow, eopts, ExploreMode::kParallel, 4);
  EXPECT_EQ(serialize_bitmap(t1.winner.bitmap),
            serialize_bitmap(t4.winner.bitmap));
  EXPECT_EQ(t1.explore.pareto, t4.explore.pareto);
  RunReport normalized = t4.report;
  normalized.threads = t1.report.threads;
  EXPECT_EQ(t1.report.to_json(/*include_timings=*/false),
            normalized.to_json(/*include_timings=*/false));
}

TEST(Explore, WinnerMatchesSerialSearchForMeetBoth) {
  // kMeetBoth commits to the first feasible candidate in preference
  // order — the same rule run_nanomap's serial search applies — so with
  // derived candidate levels the explorer must reproduce the serial
  // search's chosen level and its physical bytes.
  Design d = make_benchmark("ex1");
  FlowOptions flow = base_options();
  flow.objective = Objective::kMeetBoth;
  FlowResult serial = run_nanomap(d, flow);
  ASSERT_TRUE(serial.feasible) << serial.message;
  ExploreResult ex = run_nanomap_explore(d, flow);  // levels derived
  ASSERT_TRUE(ex.feasible);
  EXPECT_EQ(ex.winner.folding.level, serial.folding.level);
  EXPECT_EQ(serialize_bitmap(ex.winner.bitmap),
            serialize_bitmap(serial.bitmap));
}

// --- warm starts -----------------------------------------------------------

TEST(Explore, WarmStartIsResultNeutral) {
  // Warm-started candidates must emit exactly the bytes their cold runs
  // emit; only the warm counters may differ between the two sweeps.
  Design d = make_benchmark("ex1");
  FlowOptions flow = base_options();
  ExploreOptions eopts;
  eopts.levels = {1, 2};
  FabricVariant v;
  v.label = "wide";
  v.arch = wider(flow.arch);
  eopts.variants.push_back(v);

  ExploreResult warm = run_explore(d, flow, eopts, ExploreMode::kParallel, 4);
  eopts.warm_start = false;
  ExploreResult cold = run_explore(d, flow, eopts, ExploreMode::kParallel, 4);

  ASSERT_EQ(warm.results.size(), 4u);
  EXPECT_GE(warm.explore.warm_starts, 1);
  EXPECT_EQ(cold.explore.warm_starts, 0);
  // The variant candidates (odd indices) share the base candidate's
  // level and differ only in channel tracks, so they chain and at least
  // reuse the schedule.
  EXPECT_TRUE(warm.explore.outcomes[1].warm_schedule);
  EXPECT_TRUE(warm.explore.outcomes[3].warm_schedule);
  for (std::size_t i = 0; i < warm.results.size(); ++i)
    EXPECT_EQ(result_fingerprint(warm.results[i]),
              result_fingerprint(cold.results[i]))
        << "candidate " << i;
  EXPECT_EQ(warm.winner_index, cold.winner_index);
  EXPECT_EQ(warm.explore.pareto, cold.explore.pareto);
}

// --- fault injection in one candidate --------------------------------------

TEST(Explore, FaultInOneCandidateLeavesSurvivorsByteIdentical) {
  // Arm fds.schedule in candidate 0 only: that candidate degrades to a
  // clean infeasible result with the injected kind, every other
  // candidate matches the fault-free sweep byte for byte, and the
  // surviving fold is still serial/parallel identical.
  Design d = make_benchmark("ex1");
  FlowOptions flow = base_options();
  ExploreOptions eopts;
  eopts.levels = {1, 2, 0};

  ExploreResult clean = run_explore(d, flow, eopts, ExploreMode::kSerial, 1);
  ASSERT_TRUE(clean.feasible);

  FlowOptions armed = flow;
  armed.fault_plan = "fds.schedule:1:check";
  ExploreOptions fopts = eopts;
  fopts.fault_candidate = 0;
  ExploreResult serial = run_explore(d, armed, fopts, ExploreMode::kSerial, 1);
  ExploreResult parallel =
      run_explore(d, armed, fopts, ExploreMode::kParallel, 4);

  EXPECT_FALSE(serial.results[0].feasible);
  EXPECT_EQ(serial.explore.outcomes[0].error_kind,
            flow_error_kind_name(FlowErrorKind::kInternal));
  for (std::size_t i = 1; i < serial.results.size(); ++i)
    EXPECT_EQ(result_fingerprint(serial.results[i]),
              result_fingerprint(clean.results[i]))
        << "candidate " << i;
  EXPECT_EQ(fold_fingerprint(serial), fold_fingerprint(parallel));
  EXPECT_NE(serial.winner_index, 0);
  EXPECT_TRUE(serial.feasible);
}

// --- Pareto front properties -----------------------------------------------

TEST(Explore, ParetoFrontIsConsistent) {
  Design d = make_benchmark("ex1");
  FlowOptions flow = base_options();
  ExploreOptions eopts;
  eopts.levels = {1, 2, 3, 0};
  ExploreResult ex = run_nanomap_explore(d, flow, eopts);
  ASSERT_TRUE(ex.feasible);
  ASSERT_FALSE(ex.explore.pareto.empty());
  // Front members are feasible, flagged, and mutually non-dominated.
  for (int idx : ex.explore.pareto) {
    ASSERT_GE(idx, 0);
    ASSERT_LT(idx, static_cast<int>(ex.results.size()));
    EXPECT_TRUE(ex.results[static_cast<std::size_t>(idx)].feasible);
    EXPECT_TRUE(
        ex.explore.outcomes[static_cast<std::size_t>(idx)].on_pareto_front);
  }
  for (int a : ex.explore.pareto) {
    for (int b : ex.explore.pareto) {
      if (a == b) continue;
      const FlowResult& ra = ex.results[static_cast<std::size_t>(a)];
      const FlowResult& rb = ex.results[static_cast<std::size_t>(b)];
      const bool le = rb.num_les <= ra.num_les &&
                      rb.delay_ns <= ra.delay_ns &&
                      rb.clustered.num_cycles <= ra.clustered.num_cycles;
      const bool strict = rb.num_les < ra.num_les ||
                          rb.delay_ns < ra.delay_ns ||
                          rb.clustered.num_cycles < ra.clustered.num_cycles;
      EXPECT_FALSE(le && strict)
          << "front member " << a << " dominated by " << b;
    }
  }
}

// --- trace integration -----------------------------------------------------

TEST(Explore, TracedSweepHitsOnlyRegisteredSites) {
  Design d = make_benchmark("ex1");
  FlowOptions flow = base_options();
  flow.collect_trace = true;
  ExploreOptions eopts;
  eopts.levels = {1, 2, 0};
  FabricVariant v;
  v.label = "wide";
  v.arch = wider(flow.arch);
  eopts.variants.push_back(v);
  ExploreResult ex = run_nanomap_explore(d, flow, eopts);
  ASSERT_TRUE(ex.feasible);

  // Candidate jobs run with spans muted: the span tree is just the
  // explorer's own "explore" span, in serial and parallel mode alike.
  ASSERT_EQ(ex.report.stages.size(), 1u);
  EXPECT_EQ(ex.report.stages[0].name, "explore");

  long candidates = 0, warm = 0, cache_lookups = 0;
  const auto& counter_reg = Trace::known_counter_sites();
  std::set<std::string> known(counter_reg.begin(), counter_reg.end());
  for (const TraceCounterRow& c : ex.report.counters) {
    EXPECT_TRUE(known.count(c.site)) << "unregistered site " << c.site;
    if (c.site == "explore.candidates") candidates = c.value;
    if (c.site == "explore.warm_starts") warm = c.value;
    if (c.site == "route.cycle_cache_lookups") cache_lookups = c.value;
  }
  EXPECT_EQ(candidates, 6);
  EXPECT_EQ(warm, static_cast<long>(ex.explore.warm_starts));
  EXPECT_GE(warm, 1);
  EXPECT_GE(cache_lookups, 1);
}

// --- report schema ---------------------------------------------------------

TEST(Explore, ReportExploreSectionRoundTripsThroughParser) {
  Design d = make_benchmark("ex1");
  FlowOptions flow = base_options();
  ExploreOptions eopts;
  eopts.levels = {1, 0};
  ExploreResult ex = run_nanomap_explore(d, flow, eopts);
  ASSERT_TRUE(ex.feasible);

  JsonValue root = parse_json(ex.report.to_json(true));
  ASSERT_EQ(root.kind, JsonValue::Kind::kObject);
  const JsonValue* explore = root.find("explore");
  ASSERT_NE(explore, nullptr);
  ASSERT_EQ(explore->kind, JsonValue::Kind::kObject);
  for (const char* key : {"version", "mode", "candidates",
                          "feasible_candidates", "warm_starts",
                          "winner_index", "wall_seconds"})
    ASSERT_NE(explore->find(key), nullptr) << key;
  EXPECT_EQ(explore->find("version")->number,
            static_cast<double>(ExploreReport::kSchemaVersion));
  EXPECT_EQ(explore->find("mode")->string, "parallel");
  EXPECT_EQ(explore->find("candidates")->number, 2.0);
  EXPECT_EQ(explore->find("winner_index")->number,
            static_cast<double>(ex.winner_index));
  const JsonValue* outcomes = explore->find("outcomes");
  ASSERT_NE(outcomes, nullptr);
  ASSERT_EQ(outcomes->items.size(), 2u);
  for (const char* key :
       {"index", "level", "variant", "label", "feasible", "error_kind",
        "num_les", "num_cycles", "delay_ns", "area_delay_product",
        "warm_schedule", "warm_route_state", "on_pareto_front", "winner",
        "cpu_seconds"})
    EXPECT_NE(outcomes->items[0].find(key), nullptr) << key;
  const JsonValue* pareto = explore->find("pareto");
  ASSERT_NE(pareto, nullptr);
  EXPECT_EQ(pareto->kind, JsonValue::Kind::kArray);
  // A plain run_nanomap report carries no explore section.
  FlowResult plain = run_nanomap(d, flow);
  EXPECT_EQ(parse_json(plain.report.to_json(false)).find("explore"), nullptr);
}

// --- option validation -----------------------------------------------------

TEST(Explore, InvalidOptionsThrowInputError) {
  Design d = make_benchmark("ex1");
  FlowOptions flow = base_options();
  {
    ExploreOptions eopts;
    eopts.levels = {-1};
    EXPECT_THROW(run_nanomap_explore(d, flow, eopts), InputError);
  }
  {
    ExploreOptions eopts;
    eopts.fault_candidate = -2;
    EXPECT_THROW(run_nanomap_explore(d, flow, eopts), InputError);
  }
  {
    ExploreOptions eopts;
    FabricVariant v;
    v.label = "bad";
    v.arch = flow.arch;
    v.arch.les_per_mb = 0;  // invalid fabric
    eopts.variants.push_back(v);
    EXPECT_THROW(run_nanomap_explore(d, flow, eopts), InputError);
  }
}

}  // namespace
}  // namespace nanomap
