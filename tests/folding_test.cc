#include <gtest/gtest.h>

#include "core/folding.h"

namespace nanomap {
namespace {

CircuitParams params_of(int planes, int lut_max, int depth_max, int total,
                        int ffs) {
  CircuitParams p;
  p.num_plane = planes;
  p.lut_max = lut_max;
  p.depth_max = depth_max;
  p.total_luts = total;
  p.total_flipflops = ffs;
  p.num_lut.assign(static_cast<std::size_t>(planes), lut_max);
  p.depth.assign(static_cast<std::size_t>(planes), depth_max);
  return p;
}

TEST(FoldingEquations, PaperWalkthroughEq1Eq2) {
  // Paper §3: 50 LUTs, 32-LE constraint -> ceil(50/32) = 2 folding stages;
  // depth 9 -> initial folding level ceil(9/2) = 5.
  CircuitParams p = params_of(1, 50, 9, 50, 14);
  EXPECT_EQ(min_folding_stages(p, 32), 2);
  EXPECT_EQ(folding_level_for_stages(p, 2), 5);
}

TEST(FoldingEquations, Eq1RoundsUp) {
  CircuitParams p = params_of(1, 100, 10, 100, 0);
  EXPECT_EQ(min_folding_stages(p, 100), 1);
  EXPECT_EQ(min_folding_stages(p, 99), 2);
  EXPECT_EQ(min_folding_stages(p, 34), 3);
  EXPECT_EQ(min_folding_stages(p, 1), 100);
}

TEST(FoldingEquations, Eq3MinLevelFromNramDepth) {
  // min_level = ceil(depth_max * num_plane / k).
  CircuitParams p = params_of(2, 300, 24, 600, 0);
  ArchParams arch = ArchParams::paper_instance();  // k = 16
  EXPECT_EQ(min_folding_level(p, arch), 3);        // ceil(48/16)
  arch.num_reconf = 48;
  EXPECT_EQ(min_folding_level(p, arch), 1);
  arch.num_reconf = 47;
  EXPECT_EQ(min_folding_level(p, arch), 2);
}

TEST(FoldingEquations, Eq3UnboundedKAllowsLevelOne) {
  CircuitParams p = params_of(3, 300, 30, 900, 0);
  EXPECT_EQ(min_folding_level(p, ArchParams::paper_instance_unbounded_k()),
            1);
}

TEST(FoldingEquations, Eq4NoSharing) {
  // level = ceil(depth_max * available / total).
  CircuitParams p = params_of(2, 350, 20, 700, 0);
  EXPECT_EQ(folding_level_no_sharing(p, 105), 3);
  EXPECT_EQ(folding_level_no_sharing(p, 70), 2);
  EXPECT_EQ(folding_level_no_sharing(p, 5), 1);
}

TEST(FoldingConfig, StagesFromLevel) {
  CircuitParams p = params_of(1, 100, 9, 100, 0);
  FoldingConfig c4 = make_folding_config(p, 4);
  EXPECT_EQ(c4.level, 4);
  EXPECT_EQ(c4.stages_per_plane, 3);  // ceil(9/4)
  FoldingConfig c1 = make_folding_config(p, 1);
  EXPECT_EQ(c1.stages_per_plane, 9);
  FoldingConfig c9 = make_folding_config(p, 9);
  EXPECT_EQ(c9.stages_per_plane, 1);
}

TEST(FoldingConfig, LevelClampedToDepth) {
  CircuitParams p = params_of(1, 100, 9, 100, 0);
  FoldingConfig c = make_folding_config(p, 40);
  EXPECT_EQ(c.level, 9);
  EXPECT_EQ(c.stages_per_plane, 1);
}

TEST(FoldingConfig, ZeroMeansNoFolding) {
  CircuitParams p = params_of(2, 100, 9, 200, 0);
  FoldingConfig c = make_folding_config(p, 0);
  EXPECT_TRUE(c.no_folding());
  EXPECT_EQ(c.stages_per_plane, 1);
  EXPECT_EQ(c.total_configs(2), 1);
}

TEST(FoldingConfig, TotalConfigsCountsPlanes) {
  CircuitParams p = params_of(3, 100, 12, 300, 0);
  FoldingConfig c = make_folding_config(p, 4);  // 3 stages per plane
  EXPECT_EQ(c.total_configs(3), 9);
}

TEST(FoldingEquations, InvalidArgumentsThrow) {
  CircuitParams p = params_of(1, 10, 5, 10, 0);
  EXPECT_THROW(min_folding_stages(p, 0), CheckError);
  EXPECT_THROW(folding_level_for_stages(p, 0), CheckError);
  EXPECT_THROW(folding_level_no_sharing(p, 0), CheckError);
}

}  // namespace
}  // namespace nanomap
