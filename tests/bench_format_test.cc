#include <gtest/gtest.h>

#include "flow/nanomap_flow.h"
#include "map/bench_format.h"
#include "netlist/simulate.h"

namespace nanomap {
namespace {

TEST(BenchFormat, CombinationalGates) {
  Design d = parse_bench(R"(
INPUT(a)
INPUT(b)
OUTPUT(z)
z = NAND(a, b)
)");
  EXPECT_EQ(d.net.num_inputs(), 2);
  EXPECT_EQ(d.net.num_outputs(), 1);
  EXPECT_EQ(d.net.num_flipflops(), 0);
  Simulator sim(d.net);
  for (int m = 0; m < 4; ++m) {
    sim.set_input(0, m & 1);
    sim.set_input(1, m & 2);
    sim.evaluate();
    int z = -1;
    for (int id = 0; id < d.net.size(); ++id)
      if (d.net.node(id).kind == NodeKind::kOutput) z = id;
    EXPECT_EQ(sim.value(z), !((m & 1) && (m & 2))) << m;
  }
}

TEST(BenchFormat, NaryGatesDecompose) {
  Design d = parse_bench(R"(
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
INPUT(e)
OUTPUT(z)
z = AND(a, b, c, d, e)
)");
  Simulator sim(d.net);
  int z = -1;
  for (int id = 0; id < d.net.size(); ++id)
    if (d.net.node(id).kind == NodeKind::kOutput) z = id;
  for (int m = 0; m < 32; ++m) {
    for (int i = 0; i < 5; ++i) sim.set_input(i, (m >> i) & 1);
    sim.evaluate();
    EXPECT_EQ(sim.value(z), m == 31) << m;
  }
}

TEST(BenchFormat, NaryInvertedGateInvertsOnceAtRoot) {
  Design d = parse_bench(R"(
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(z)
z = NOR(a, b, c)
)");
  Simulator sim(d.net);
  int z = -1;
  for (int id = 0; id < d.net.size(); ++id)
    if (d.net.node(id).kind == NodeKind::kOutput) z = id;
  for (int m = 0; m < 8; ++m) {
    for (int i = 0; i < 3; ++i) sim.set_input(i, (m >> i) & 1);
    sim.evaluate();
    EXPECT_EQ(sim.value(z), m == 0) << m;
  }
}

TEST(BenchFormat, S27ParsesAndRuns) {
  Design d = parse_bench_file(NMAP_TEST_DESIGN_DIR "/s27.bench");
  EXPECT_EQ(d.name, "s27");
  EXPECT_EQ(d.net.num_inputs(), 4);
  EXPECT_EQ(d.net.num_flipflops(), 3);
  EXPECT_EQ(d.net.num_outputs(), 1);

  // Reference next-state function of s27 (direct evaluation).
  auto reference = [](int in, int s) {
    bool g0 = in & 1, g1 = in & 2, g2 = in & 4, g3 = in & 8;
    bool g5 = s & 1, g6 = s & 2, g7 = s & 4;
    bool g14 = !g0;
    bool g8 = g14 && g6;
    bool g12 = !(g1 || g7);
    bool g15 = g12 || g8;
    bool g16 = g3 || g8;
    bool g9 = !(g16 && g15);
    bool g11 = !(g5 || g9);
    bool g10 = !(g14 || g11);
    bool g13 = !(g2 || g12);
    bool g17 = !g11;
    int ns = (g10 ? 1 : 0) | (g11 ? 2 : 0) | (g13 ? 4 : 0);
    return std::pair<int, bool>(ns, g17);
  };

  Simulator sim(d.net);
  std::vector<int> pis, ffs;
  int po = -1;
  for (int id = 0; id < d.net.size(); ++id) {
    NodeKind k = d.net.node(id).kind;
    if (k == NodeKind::kInput) pis.push_back(id);
    if (k == NodeKind::kFlipFlop) ffs.push_back(id);
    if (k == NodeKind::kOutput) po = id;
  }
  ASSERT_EQ(pis.size(), 4u);
  ASSERT_EQ(ffs.size(), 3u);

  // March through a few input sequences from the reset state and compare
  // output + state against the reference FSM.
  sim.reset(false);
  int ref_state = 0;
  const int seq[] = {0, 5, 9, 15, 3, 8, 12, 1, 7, 14};
  for (int in : seq) {
    sim.set_input_bus(pis, static_cast<std::uint64_t>(in));
    sim.step();
    sim.evaluate();
    auto [ns, out] = reference(in, ref_state);
    // Output was computed from the pre-clock state: compare next state.
    ref_state = ns;
    EXPECT_EQ(sim.read_bus(ffs), static_cast<std::uint64_t>(ref_state))
        << "after input " << in;
    (void)out;
    (void)po;
  }
}

TEST(BenchFormat, MappedThroughFullFlow) {
  Design d = parse_bench_file(NMAP_TEST_DESIGN_DIR "/s27.bench");
  FlowOptions opts;
  opts.arch = ArchParams::paper_instance();
  FlowResult r = run_nanomap(d, opts);
  ASSERT_TRUE(r.feasible) << r.message;
  EXPECT_GT(r.num_les, 0);
}

TEST(BenchFormat, LutSizeParameter) {
  const char* text = R"(
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
OUTPUT(z)
t1 = AND(a, b)
t2 = OR(c, d)
z = XOR(t1, t2)
)";
  Design d4 = parse_bench(text, 4);
  Design d2 = parse_bench(text, 2);
  EXPECT_LE(d4.net.num_luts(), d2.net.num_luts());
  for (const LutNode& n : d2.net.nodes()) {
    if (n.kind == NodeKind::kLut) {
      EXPECT_LE(n.fanins.size(), 2u);
    }
  }
}

TEST(BenchFormatErrors, Diagnostics) {
  EXPECT_THROW(parse_bench(""), InputError);
  EXPECT_THROW(parse_bench("INPUT(a)\nz = FROB(a)\nOUTPUT(z)\n"),
               InputError);
  EXPECT_THROW(parse_bench("INPUT(a)\nOUTPUT(z)\nz = AND(a, nosuch)\n"),
               InputError);
  EXPECT_THROW(parse_bench("INPUT(a)\nOUTPUT(nosuch)\nz = NOT(a)\n"),
               InputError);
  // Combinational loop.
  EXPECT_THROW(parse_bench(R"(
INPUT(a)
OUTPUT(u)
u = AND(a, v)
v = AND(a, u)
)"),
               InputError);
  // DFF arity.
  EXPECT_THROW(parse_bench("INPUT(a)\nOUTPUT(q)\nq = DFF(a, a)\n"),
               InputError);
}

TEST(BenchFormat, CommentsAndWhitespaceTolerated) {
  Design d = parse_bench(R"(
# header comment
INPUT( a )
INPUT( b )
OUTPUT( z )   # trailing
z = and( a , b )
)");
  EXPECT_EQ(d.net.num_luts(), 1);
}

}  // namespace
}  // namespace nanomap
