#include <gtest/gtest.h>

#include "circuits/benchmarks.h"
#include "flow/nanomap_flow.h"

namespace nanomap {
namespace {

FlowResult run_level(const Design& d, int level) {
  FlowOptions opts;
  opts.arch = ArchParams::paper_instance_unbounded_k();
  opts.forced_folding_level = level;
  return run_nanomap(d, opts);
}

TEST(CriticalPath, EndsAtTheWorstArrival) {
  Design d = make_ex1(8);
  FlowResult r = run_level(d, 2);
  ASSERT_TRUE(r.feasible) << r.message;
  ASSERT_FALSE(r.timing.critical_path.empty());
  double worst =
      r.timing.cycle_period_ps[static_cast<std::size_t>(
          r.timing.critical_cycle)];
  const PathElement& last = r.timing.critical_path.back();
  // The endpoint's arrival plus FF setup is the period.
  EXPECT_NEAR(last.arrival_ps + ArchParams::paper_instance().ff_setup_ps,
              worst, 1e-6);
}

TEST(CriticalPath, ArrivalsAreMonotone) {
  Design d = make_fir(3, 8);
  FlowResult r = run_level(d, 1);
  ASSERT_TRUE(r.feasible) << r.message;
  const auto& path = r.timing.critical_path;
  ASSERT_GE(path.size(), 2u);
  for (std::size_t i = 1; i < path.size(); ++i)
    EXPECT_GT(path[i].arrival_ps, path[i - 1].arrival_ps - 1e-9);
}

TEST(CriticalPath, FollowsRealFaninEdges) {
  Design d = make_ex1(6);
  FlowResult r = run_level(d, 0);
  ASSERT_TRUE(r.feasible) << r.message;
  const auto& path = r.timing.critical_path;
  ASSERT_GE(path.size(), 2u);
  for (std::size_t i = 1; i < path.size(); ++i) {
    const LutNode& n = d.net.node(path[i].node);
    ASSERT_EQ(n.kind, NodeKind::kLut);
    bool is_fanin = false;
    for (int f : n.fanins) is_fanin |= (f == path[i - 1].node);
    EXPECT_TRUE(is_fanin) << "hop " << i;
  }
}

TEST(CriticalPath, LengthBoundedByFoldingLevel) {
  // Within one folding cycle the combinational chain has at most p LUTs
  // (plus the starting source element).
  Design d = make_ex1(8);
  for (int level : {1, 2, 4}) {
    FlowResult r = run_level(d, level);
    ASSERT_TRUE(r.feasible) << r.message;
    int luts_on_path = 0;
    for (const PathElement& e : r.timing.critical_path) {
      if (d.net.node(e.node).kind == NodeKind::kLut &&
          r.clustered.cycle_of[static_cast<std::size_t>(e.node)] ==
              r.timing.critical_cycle)
        ++luts_on_path;  // the path may *start* at an earlier-cycle source
    }
    EXPECT_LE(luts_on_path, level) << "level " << level;
    EXPECT_GE(luts_on_path, 1);
  }
}

}  // namespace
}  // namespace nanomap
