#include <gtest/gtest.h>

#include "circuits/benchmarks.h"
#include "core/temporal_cluster.h"
#include "netlist/plane.h"
#include "place/placement.h"

namespace nanomap {
namespace {

ClusteredDesign cluster_benchmark(const std::string& name, int level,
                                  const ArchParams& arch,
                                  Design* out_design = nullptr) {
  Design d = make_benchmark(name);
  CircuitParams p = extract_circuit_params(d.net);
  DesignSchedule sched;
  sched.folding = make_folding_config(p, level);
  sched.planes_share = !sched.folding.no_folding();
  for (int plane = 0; plane < p.num_plane; ++plane) {
    PlaneScheduleGraph g = build_schedule_graph(d, plane, sched.folding);
    sched.plane_results.push_back(schedule_plane(g, arch));
    sched.graphs.push_back(std::move(g));
  }
  ClusteredDesign cd = temporal_cluster(d, sched, arch);
  if (out_design != nullptr) *out_design = std::move(d);
  return cd;
}

TEST(Placement, AllSmbsGetDistinctSites) {
  ArchParams arch = ArchParams::paper_instance_unbounded_k();
  ClusteredDesign cd = cluster_benchmark("ex1", 0, arch);
  PlacementResult r = place_design(cd, arch);
  std::set<int> sites;
  for (int m = 0; m < cd.num_smbs; ++m)
    sites.insert(r.placement.site_of_smb[static_cast<std::size_t>(m)]);
  EXPECT_EQ(static_cast<int>(sites.size()), cd.num_smbs);
  EXPECT_GE(r.placement.grid.sites(), cd.num_smbs);
}

TEST(Placement, AnnealingImprovesOverRandomInitial) {
  ArchParams arch = ArchParams::paper_instance_unbounded_k();
  ClusteredDesign cd = cluster_benchmark("FIR", 0, arch);
  // Random baseline: average cost over fresh random placements.
  Rng rng(17);
  Placement random;
  random.grid = size_grid_for(cd.num_smbs);
  std::vector<int> sites(static_cast<std::size_t>(random.grid.sites()));
  for (int i = 0; i < random.grid.sites(); ++i)
    sites[static_cast<std::size_t>(i)] = i;
  rng.shuffle(sites);
  random.site_of_smb.assign(static_cast<std::size_t>(cd.num_smbs), 0);
  for (int m = 0; m < cd.num_smbs; ++m)
    random.site_of_smb[static_cast<std::size_t>(m)] =
        sites[static_cast<std::size_t>(m)];
  double random_cost = placement_cost(cd, random, 0.0);

  PlacementResult placed = place_design(cd, arch);
  EXPECT_LT(placed.wirelength, random_cost * 0.8);
}

TEST(Placement, DeterministicForSeed) {
  ArchParams arch = ArchParams::paper_instance_unbounded_k();
  ClusteredDesign cd = cluster_benchmark("ex1", 1, arch);
  PlacementOptions opts;
  opts.seed = 5;
  PlacementResult a = place_design(cd, arch, opts);
  PlacementResult b = place_design(cd, arch, opts);
  EXPECT_EQ(a.placement.site_of_smb, b.placement.site_of_smb);
  EXPECT_DOUBLE_EQ(a.cost, b.cost);
}

TEST(Placement, CostFunctionHandChecked) {
  ClusteredDesign cd;
  cd.num_cycles = 1;
  cd.num_smbs = 3;
  PlacedNet n;
  n.driver_node = 0;
  n.cycle = 0;
  n.driver_smb = 0;
  n.sink_smbs = {1, 2};
  n.criticality = 1.0;
  cd.nets.push_back(n);

  Placement p;
  p.grid = {4, 4};
  // smb0 at (0,0), smb1 at (3,0), smb2 at (0,2): bbox = 3 + 2 = 5.
  p.site_of_smb = {0, 3, 8};
  EXPECT_DOUBLE_EQ(placement_cost(cd, p, 0.0), 5.0);
  EXPECT_DOUBLE_EQ(placement_cost(cd, p, 0.5), 7.5);
}

TEST(Placement, SingleSmbDesignTrivial) {
  ArchParams arch = ArchParams::paper_instance_unbounded_k();
  ClusteredDesign cd;
  cd.num_cycles = 1;
  cd.num_smbs = 1;
  PlacementResult r = place_design(cd, arch);
  EXPECT_EQ(r.placement.site_of_smb.size(), 1u);
  EXPECT_DOUBLE_EQ(r.cost, 0.0);
}

TEST(Routability, DenserDesignHasHigherUtilization) {
  ArchParams arch = ArchParams::paper_instance_unbounded_k();
  ClusteredDesign flat = cluster_benchmark("c5315", 0, arch);
  ClusteredDesign folded = cluster_benchmark("c5315", 1, arch);
  PlacementResult pf = place_design(flat, arch);
  PlacementResult pg = place_design(folded, arch);
  // The no-folding c5315 spreads over many SMBs with heavy inter-SMB
  // traffic; utilization should exceed the folded mapping's.
  EXPECT_GT(pf.routability.peak_utilization,
            pg.routability.peak_utilization * 0.8);
  EXPECT_GT(pf.routability.peak_utilization, 0.0);
  EXPECT_GE(pf.routability.peak_utilization, pf.routability.avg_utilization);
}

TEST(Routability, EmptyNetlistIsRoutable) {
  ArchParams arch = ArchParams::paper_instance();
  ClusteredDesign cd;
  cd.num_cycles = 1;
  cd.num_smbs = 2;
  Placement p;
  p.grid = {2, 2};
  p.site_of_smb = {0, 1};
  RoutabilityEstimate est = estimate_routability(cd, p, arch);
  EXPECT_TRUE(est.routable);
  EXPECT_DOUBLE_EQ(est.peak_utilization, 0.0);
}

TEST(Grid, SizingHasSlackAndFits) {
  for (int n : {0, 1, 5, 16, 100, 333}) {
    GridSize g = size_grid_for(n);
    EXPECT_GE(g.sites(), n);
    EXPECT_EQ(g.width, g.height);
  }
  EXPECT_GE(size_grid_for(100).sites(), 110);  // ~20% slack
}

}  // namespace
}  // namespace nanomap
