// The schedule-graph SCC merge: interleaved module clusters with mutual
// dependencies must collapse into one scheduling node (and stay feasible
// when the merged span still fits a folding-stage window).
#include <gtest/gtest.h>

#include "core/schedule_graph.h"
#include "netlist/plane.h"

namespace nanomap {
namespace {

// Two modules whose level-1/level-2 LUTs feed each other crosswise:
//   A1(level1) -> B2(level2),  B1(level1) -> A2(level2)
// At folding level 2 both modules' slices occupy window 1, and the edges
// A:c1 -> B:c1 plus B:c1 -> A:c1 form a 2-cycle that must be merged.
Design interleaved_modules() {
  Design d;
  int x = d.net.add_input("x", 0);
  int y = d.net.add_input("y", 0);
  int mod_a = d.add_module("A", ModuleType::kGeneric, 1, 0);
  int mod_b = d.add_module("B", ModuleType::kGeneric, 1, 0);
  int a1 = d.net.add_lut("a1", {x, y}, 0x6, 0, mod_a);
  int b1 = d.net.add_lut("b1", {x, y}, 0x8, 0, mod_b);
  int a2 = d.net.add_lut("a2", {b1, x}, 0x6, 0, mod_a);
  int b2 = d.net.add_lut("b2", {a1, y}, 0x6, 0, mod_b);
  d.net.add_output("oa", a2);
  d.net.add_output("ob", b2);
  d.net.compute_levels();
  d.refresh_module_stats();
  return d;
}

TEST(SccMerge, MutualClustersCollapseIntoOneNode) {
  Design d = interleaved_modules();
  CircuitParams p = extract_circuit_params(d.net);
  ASSERT_EQ(p.depth_max, 2);
  PlaneScheduleGraph g =
      build_schedule_graph(d, 0, make_folding_config(p, 2));
  ASSERT_TRUE(g.feasible);
  // All four LUTs end up in a single merged node (one window, 2-cycle).
  ASSERT_EQ(g.nodes.size(), 1u);
  EXPECT_EQ(g.nodes[0].weight, 4);
  EXPECT_TRUE(g.nodes[0].is_cluster);
  // And it schedules trivially into the single stage.
  std::vector<int> unpinned(g.nodes.size(), 0);
  TimeFrames tf = compute_time_frames(g, unpinned);
  EXPECT_TRUE(tf.feasible);
  EXPECT_EQ(tf.asap[0], 1);
}

TEST(SccMerge, AcyclicClustersAreNotMerged) {
  // Same structure without the back edge: A feeds B only.
  Design d;
  int x = d.net.add_input("x", 0);
  int y = d.net.add_input("y", 0);
  int mod_a = d.add_module("A", ModuleType::kGeneric, 1, 0);
  int mod_b = d.add_module("B", ModuleType::kGeneric, 1, 0);
  int a1 = d.net.add_lut("a1", {x, y}, 0x6, 0, mod_a);
  int b2 = d.net.add_lut("b2", {a1, y}, 0x6, 0, mod_b);
  d.net.add_output("o", b2);
  d.net.compute_levels();
  d.refresh_module_stats();
  CircuitParams p = extract_circuit_params(d.net);
  PlaneScheduleGraph g =
      build_schedule_graph(d, 0, make_folding_config(p, 2));
  EXPECT_EQ(g.nodes.size(), 2u);
}

TEST(SccMerge, FinerFoldingSeparatesTheCycle) {
  // At folding level 1 the two modules' slices land in different windows,
  // the cross edges become ordinary forward edges (A:c1 -> B:c2,
  // B:c1 -> A:c2), and no merge happens. This pins the structural
  // property that makes merged nodes always fit one window: edges are
  // slice-nondecreasing, so any dependency cycle lives inside a single
  // window slice.
  Design d = interleaved_modules();
  CircuitParams p = extract_circuit_params(d.net);
  PlaneScheduleGraph g =
      build_schedule_graph(d, 0, make_folding_config(p, 1));
  EXPECT_TRUE(g.feasible);
  EXPECT_EQ(g.nodes.size(), 4u);
  for (const ScheduleNode& n : g.nodes) {
    EXPECT_EQ(n.span(), 1);
  }
}

}  // namespace
}  // namespace nanomap
