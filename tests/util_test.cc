#include <gtest/gtest.h>

#include <set>

#include "util/check.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/strings.h"

namespace nanomap {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 4);
}

TEST(Rng, ZeroSeedIsUsable) {
  Rng r(0);
  EXPECT_NE(r.next_u64(), 0u);
}

TEST(Rng, NextBelowInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(17), 17u);
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng r(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(r.next_below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextIntInclusiveBounds) {
  Rng r(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int v = r.next_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(13);
  for (int i = 0; i < 1000; ++i) {
    double v = r.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ShufflePreservesElements) {
  Rng r(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, PickThrowsOnEmpty) {
  Rng r(1);
  std::vector<int> empty;
  EXPECT_THROW(r.pick(empty), CheckError);
}

TEST(Strings, SplitSkipsEmptyTokens) {
  EXPECT_EQ(split("a  b   c", ' '),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("  lead trail  ", ' '),
            (std::vector<std::string>{"lead", "trail"}));
  EXPECT_TRUE(split("", ' ').empty());
  EXPECT_TRUE(split("   ", ' ').empty());
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(trim("\t a b \n"), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("plane=3", "plane="));
  EXPECT_FALSE(starts_with("pla", "plane="));
  EXPECT_TRUE(starts_with("abc", ""));
}

TEST(Strings, ParseIntValid) {
  EXPECT_EQ(parse_int("42", "t"), 42);
  EXPECT_EQ(parse_int("-7", "t"), -7);
  EXPECT_EQ(parse_int("0", "t"), 0);
}

TEST(Strings, ParseIntInvalidThrows) {
  EXPECT_THROW(parse_int("4x", "t"), InputError);
  EXPECT_THROW(parse_int("", "t"), InputError);
  EXPECT_THROW(parse_int("abc", "t"), InputError);
}

TEST(Strings, ParseDouble) {
  EXPECT_DOUBLE_EQ(parse_double("2.5", "t"), 2.5);
  EXPECT_THROW(parse_double("2.5x", "t"), InputError);
}

TEST(Strings, StrFormat) {
  EXPECT_EQ(str_format("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(str_format("%.2f", 1.234), "1.23");
}

TEST(Check, MacroThrowsWithLocation) {
  try {
    NM_CHECK_MSG(1 == 2, "custom " << 42);
    FAIL() << "expected throw";
  } catch (const CheckError& e) {
    std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("custom 42"), std::string::npos);
  }
}

TEST(Check, PassingCheckDoesNotThrow) {
  EXPECT_NO_THROW(NM_CHECK(2 + 2 == 4));
}

TEST(Log, LevelFiltering) {
  LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Filtered message must not crash.
  NM_LOG(kDebug) << "dropped";
  set_log_level(before);
}

}  // namespace
}  // namespace nanomap
