// Determinism contract of the parallel flow (the guarantee that makes
// `--threads` safe): for a fixed (input, seed), the placement, the routed
// nets, and the emitted configuration bitmap are byte-identical across
// repeated runs and across thread counts — with the parallel stages
// actually engaged (multi-seed restarts, batched PathFinder reroutes).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>

#include "bitstream/bitmap.h"
#include "circuits/benchmarks.h"
#include "circuits/random_dag.h"
#include "core/fds.h"
#include "flow/nanomap_flow.h"
#include "map/bench_format.h"
#include "netlist/plane.h"
#include "util/thread_pool.h"

namespace nanomap {
namespace {

// Exact byte fingerprint of everything the flow emits. Doubles are added
// by memcpy so the comparison is bit-exact, not epsilon-based.
std::string fingerprint(const FlowResult& r) {
  std::string fp;
  auto add_int = [&](long long v) {
    char buf[sizeof v];
    std::memcpy(buf, &v, sizeof v);
    fp.append(buf, sizeof v);
  };
  auto add_double = [&](double v) {
    char buf[sizeof v];
    std::memcpy(buf, &v, sizeof v);
    fp.append(buf, sizeof v);
  };

  // Placement bytes.
  add_int(r.placement.placement.grid.width);
  add_int(r.placement.placement.grid.height);
  for (int site : r.placement.placement.site_of_smb) add_int(site);
  add_double(r.placement.cost);
  add_double(r.placement.wirelength);

  // Routed nets: topology and bit-exact delays.
  add_int(static_cast<long long>(r.routing.nets.size()));
  for (const NetRoute& nr : r.routing.nets) {
    add_int(nr.net_index);
    for (int s : nr.sink_smbs) add_int(s);
    for (double d : nr.sink_delay_ps) add_double(d);
    for (int n : nr.wire_nodes) add_int(n);
  }
  add_int(r.routing.usage.direct);
  add_int(r.routing.usage.len1);
  add_int(r.routing.usage.len4);
  add_int(r.routing.usage.global);

  // Emitted bitmap, via its stable byte serialization.
  std::vector<std::uint8_t> bytes = serialize_bitmap(r.bitmap);
  fp.append(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  return fp;
}

FlowResult run_with(const Design& d, int threads, int restarts,
                    int route_batch) {
  FlowOptions opts;
  opts.arch = ArchParams::paper_instance();
  opts.seed = 42;
  opts.threads = threads;
  opts.placement.restarts = restarts;
  opts.router.batch_size = route_batch;
  FlowResult r = run_nanomap(d, opts);
  EXPECT_TRUE(r.feasible) << r.message;
  return r;
}

Design s27_design() {
  return parse_bench_file(NMAP_TEST_DESIGN_DIR "/s27.bench");
}

Design random_design() {
  RandomDagSpec spec;
  spec.num_planes = 2;
  spec.luts_per_plane = 45;
  spec.depth = 6;
  spec.regs_per_plane = 6;
  spec.seed = 1234;
  return make_random_design(spec);
}

// The full matrix for one design: repeatability at fixed thread counts,
// plus byte-equality across threads in {1, 2, 4}, with the parallel
// machinery engaged (3 restarts, 4-net route batches).
void expect_thread_invariant(const Design& d) {
  const int kRestarts = 3;
  const int kBatch = 4;
  std::string t1 = fingerprint(run_with(d, 1, kRestarts, kBatch));
  std::string t1_again = fingerprint(run_with(d, 1, kRestarts, kBatch));
  EXPECT_EQ(t1, t1_again) << "threads=1 not repeatable";

  std::string t2 = fingerprint(run_with(d, 2, kRestarts, kBatch));
  std::string t4 = fingerprint(run_with(d, 4, kRestarts, kBatch));
  std::string t4_again = fingerprint(run_with(d, 4, kRestarts, kBatch));
  EXPECT_EQ(t4, t4_again) << "threads=4 not repeatable";
  EXPECT_EQ(t1, t2) << "threads=2 diverged from threads=1";
  EXPECT_EQ(t1, t4) << "threads=4 diverged from threads=1";
}

TEST(Determinism, S27AcrossRunsAndThreadCounts) {
  expect_thread_invariant(s27_design());
}

// Golden pin of the incremental bounding-box cost kernel: the annealer's
// cached-bbox deltas are integer-exact reproductions of the historical
// from-scratch recompute, so the whole flow output must stay *byte
// identical* to the pre-kernel binary. These FNV-1a hashes of the full
// fingerprint were captured from that binary (threads and restarts must
// not matter either — every cell of the matrix pins the same value).
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

TEST(Determinism, GoldenFingerprintAcrossThreadsAndRestarts) {
  struct Case {
    const char* name;
    Design design;
    std::uint64_t want;
  };
  Case cases[] = {
      {"s27", s27_design(), 0x1ecc1e36737c91f0ull},
      {"random-dag", random_design(), 0x5cf9730701668e3full},
  };
  for (const Case& c : cases) {
    for (int threads : {1, 4}) {
      for (int restarts : {1, 4}) {
        std::uint64_t got =
            fnv1a(fingerprint(run_with(c.design, threads, restarts, 4)));
        EXPECT_EQ(got, c.want)
            << c.name << " diverged from the pre-incremental-kernel binary"
            << " at threads=" << threads << " restarts=" << restarts;
      }
    }
  }
}

TEST(Determinism, RandomDagAcrossRunsAndThreadCounts) {
  expect_thread_invariant(random_design());
}

// Golden pin of the incremental FDS scheduling kernel: per-plane schedules
// of every bundled paper circuit at folding levels 1 and 2, hashed
// byte-exactly. The hashes were captured from the pre-kernel from-scratch
// scheduler, and must not move — with or without a thread pool.
std::uint64_t schedule_fingerprint(const Design& d, int level,
                                   ThreadPool* pool) {
  CircuitParams p = extract_circuit_params(d.net);
  FoldingConfig cfg = make_folding_config(p, level);
  ArchParams arch = ArchParams::paper_instance_unbounded_k();
  std::string fp;
  auto add_int = [&fp](long long v) {
    char buf[sizeof v];
    std::memcpy(buf, &v, sizeof v);
    fp.append(buf, sizeof v);
  };
  for (int plane = 0; plane < p.num_plane; ++plane) {
    PlaneScheduleGraph g = build_schedule_graph(d, plane, cfg);
    FdsResult r = schedule_plane(g, arch, FdsOptions{}, pool);
    add_int(g.num_stages);
    add_int(r.feasible ? 1 : 0);
    for (int s : r.stage_of) add_int(s);
    add_int(r.max_le);
  }
  return fnv1a(fp);
}

TEST(Determinism, GoldenScheduleFingerprints) {
  struct Case {
    const char* name;
    int level;
    std::uint64_t want;
  };
  const Case cases[] = {
      {"ex1", 1, 0x418e4acd8cf1b0e2ull},   {"ex1", 2, 0x7a6a953eec79d609ull},
      {"FIR", 1, 0x0eb8d160fa3b279eull},   {"FIR", 2, 0x7cb5ccddde35fd68ull},
      {"ex2", 1, 0xef4364047217818full},   {"ex2", 2, 0x27fdf25dcf85effdull},
      {"c5315", 1, 0x3dd45a268fae6420ull}, {"c5315", 2, 0x257443151e108529ull},
      {"Biquad", 1, 0x3ad66958b0003531ull},
      {"Biquad", 2, 0x3b59a5aafe2f7c87ull},
      {"Paulin", 1, 0x52f3464aa5e65110ull},
      {"Paulin", 2, 0x43fd2a7494c9d1ddull},
      {"ASPP4", 1, 0x08ab879bd3f3f42cull},
      {"ASPP4", 2, 0x9a094a3849776469ull},
  };
  ThreadPool pool(4);
  for (const Case& c : cases) {
    Design d = make_benchmark(c.name);
    EXPECT_EQ(schedule_fingerprint(d, c.level, nullptr), c.want)
        << c.name << " level " << c.level
        << " diverged from the from-scratch scheduler (no pool)";
    EXPECT_EQ(schedule_fingerprint(d, c.level, &pool), c.want)
        << c.name << " level " << c.level
        << " diverged from the from-scratch scheduler (threads=4)";
  }
}

TEST(Determinism, DefaultSerialConfigUnaffectedByThreads) {
  // restarts=1 / batch=1 is the historical serial flow; adding threads
  // must not change a single byte of it.
  Design d = s27_design();
  std::string serial = fingerprint(run_with(d, 1, 1, 1));
  std::string pooled = fingerprint(run_with(d, 4, 1, 1));
  EXPECT_EQ(serial, pooled);
}

TEST(Determinism, MoreRestartsNeverWorsenPlacementCost) {
  // Restart 0 always anneals with the base seed stream, so widening the
  // portfolio can only match or beat the single-chain cost. The winner is
  // re-derived each run (reproducible) and thread-count invariant.
  Design d = random_design();
  FlowOptions fo;
  fo.arch = ArchParams::paper_instance();
  fo.run_physical = false;  // just need the clustered design
  FlowResult r = run_nanomap(d, fo);
  ASSERT_TRUE(r.feasible) << r.message;

  ThreadPool pool2(2);
  ThreadPool pool1(1);
  PlacementOptions po;
  po.seed = 42;
  po.restarts = 1;
  PlacementResult p1 = place_design(r.clustered, fo.arch, po, &pool2);
  po.restarts = 3;
  PlacementResult p3 = place_design(r.clustered, fo.arch, po, &pool2);
  EXPECT_LE(p3.cost, p1.cost);

  PlacementResult p3_again = place_design(r.clustered, fo.arch, po, &pool2);
  EXPECT_EQ(p3.placement.site_of_smb, p3_again.placement.site_of_smb);
  EXPECT_EQ(p3.winning_restart, p3_again.winning_restart);

  PlacementResult p3_serial = place_design(r.clustered, fo.arch, po, &pool1);
  EXPECT_EQ(p3.placement.site_of_smb, p3_serial.placement.site_of_smb);
  EXPECT_EQ(p3.winning_restart, p3_serial.winning_restart);
  PlacementResult p3_nopool = place_design(r.clustered, fo.arch, po, nullptr);
  EXPECT_EQ(p3.placement.site_of_smb, p3_nopool.placement.site_of_smb);
}

TEST(Determinism, SeedChangesTheResult) {
  // Sanity check that the fingerprint is sensitive at all: different
  // seeds should give different placements on a non-trivial design.
  Design d = random_design();
  FlowOptions opts;
  opts.arch = ArchParams::paper_instance();
  opts.threads = 2;
  opts.seed = 42;
  FlowResult a = run_nanomap(d, opts);
  opts.seed = 43;
  FlowResult b = run_nanomap(d, opts);
  ASSERT_TRUE(a.feasible && b.feasible);
  EXPECT_NE(fingerprint(a), fingerprint(b));
}

}  // namespace
}  // namespace nanomap
