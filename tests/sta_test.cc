#include <gtest/gtest.h>

#include "circuits/benchmarks.h"
#include "netlist/plane.h"
#include "route/sta.h"

namespace nanomap {
namespace {

DesignSchedule make_schedule(const Design& d, int level,
                             const ArchParams& arch) {
  CircuitParams p = extract_circuit_params(d.net);
  DesignSchedule sched;
  sched.folding = make_folding_config(p, level);
  sched.planes_share = !sched.folding.no_folding();
  for (int plane = 0; plane < p.num_plane; ++plane) {
    PlaneScheduleGraph g = build_schedule_graph(d, plane, sched.folding);
    sched.plane_results.push_back(schedule_plane(g, arch));
    sched.graphs.push_back(std::move(g));
  }
  return sched;
}

TEST(ManhattanDelay, MonotoneInDistance) {
  ArchParams arch = ArchParams::paper_instance();
  double prev = 0.0;
  for (int d = 0; d <= 16; ++d) {
    double v = manhattan_net_delay_ps(arch, d, 0);
    EXPECT_GE(v, prev - 1e-9) << "d=" << d;
    prev = v;
  }
}

TEST(ManhattanDelay, SameSmbIsLocalMux) {
  ArchParams arch = ArchParams::paper_instance();
  EXPECT_DOUBLE_EQ(manhattan_net_delay_ps(arch, 0, 0),
                   arch.local_mux_delay_ps);
}

TEST(ManhattanDelay, LongDistanceCapsAtGlobal) {
  ArchParams arch = ArchParams::paper_instance();
  double far = manhattan_net_delay_ps(arch, 30, 30);
  EXPECT_LE(far, arch.global_wire_delay_ps + arch.local_mux_delay_ps + 1.0);
}

TEST(Sta, SingleLutCyclePeriod) {
  Design d;
  int a = d.net.add_input("a", 0);
  int b = d.net.add_input("b", 0);
  int l = d.net.add_lut("l", {a, b}, 0x8, 0);
  d.net.add_output("o", l);
  d.net.compute_levels();
  ArchParams arch = ArchParams::paper_instance_unbounded_k();
  DesignSchedule sched = make_schedule(d, 0, arch);
  ClusteredDesign cd = temporal_cluster(d, sched, arch);
  Placement p;
  p.grid = size_grid_for(cd.num_smbs);
  for (int m = 0; m < cd.num_smbs; ++m) p.site_of_smb.push_back(m);
  TimingReport t = analyze_timing(d, sched, cd, p, nullptr, arch);
  // One LUT from a PI: local mux + LUT + setup.
  EXPECT_NEAR(t.cycle_period_ps[0],
              arch.local_mux_delay_ps + arch.lut_delay_ps + arch.ff_setup_ps,
              1e-6);
  // No folding: no reconfiguration overhead.
  EXPECT_NEAR(t.circuit_delay_ns, t.cycle_period_ps[0] / 1000.0, 1e-9);
}

TEST(Sta, DepthScalesPeriod) {
  // Chain of 5 LUTs packed into one SMB: the clusterer keeps the chain in
  // one MB, so hops after the first are intra-MB (the faster first-level
  // crossbar).
  Design d;
  int a = d.net.add_input("a", 0);
  int prev = a;
  for (int i = 0; i < 5; ++i)
    prev = d.net.add_lut("l" + std::to_string(i), {prev, a}, 0x6, 0);
  d.net.add_output("o", prev);
  d.net.compute_levels();
  ArchParams arch = ArchParams::paper_instance_unbounded_k();
  DesignSchedule sched = make_schedule(d, 0, arch);
  ClusteredDesign cd = temporal_cluster(d, sched, arch);
  ASSERT_EQ(cd.num_smbs, 1);
  Placement p;
  p.grid = {1, 1};
  p.site_of_smb = {0};
  TimingReport t = analyze_timing(d, sched, cd, p, nullptr, arch);
  double expected = 5 * arch.lut_delay_ps + arch.local_mux_delay_ps +
                    arch.ff_setup_ps;
  // Intermediate hops use either the MB or the SMB crossbar depending on
  // slot packing.
  EXPECT_GE(t.cycle_period_ps[0],
            expected + 4 * arch.mb_mux_delay_ps - 1e-6);
  EXPECT_LE(t.cycle_period_ps[0],
            expected + 4 * arch.local_mux_delay_ps + 1e-6);
}

TEST(Sta, IntraMbHopFasterThanIntraSmb) {
  ArchParams arch = ArchParams::paper_instance();
  EXPECT_LT(arch.mb_mux_delay_ps, arch.local_mux_delay_ps);
}

TEST(Sta, FoldingAddsReconfigurationPerCycle) {
  Design d = make_ex1(6);
  ArchParams arch = ArchParams::paper_instance_unbounded_k();
  DesignSchedule sched = make_schedule(d, 1, arch);
  ClusteredDesign cd = temporal_cluster(d, sched, arch);
  Placement p;
  p.grid = size_grid_for(cd.num_smbs);
  for (int m = 0; m < cd.num_smbs; ++m) p.site_of_smb.push_back(m);
  TimingReport t = analyze_timing(d, sched, cd, p, nullptr, arch);
  double worst = 0.0;
  for (double c : t.cycle_period_ps) worst = std::max(worst, c);
  EXPECT_NEAR(t.folding_cycle_ns, (worst + arch.reconf_time_ps) / 1000.0,
              1e-9);
  EXPECT_NEAR(t.circuit_delay_ns,
              sched.folding.stages_per_plane * t.folding_cycle_ns, 1e-9);
}

TEST(Sta, MultiPlaneDelayMultipliesByPlaneCount) {
  Design d = make_ex2(6);
  ArchParams arch = ArchParams::paper_instance_unbounded_k();
  DesignSchedule sched = make_schedule(d, 2, arch);
  ClusteredDesign cd = temporal_cluster(d, sched, arch);
  Placement p;
  p.grid = size_grid_for(cd.num_smbs);
  for (int m = 0; m < cd.num_smbs; ++m) p.site_of_smb.push_back(m);
  TimingReport t = analyze_timing(d, sched, cd, p, nullptr, arch);
  EXPECT_NEAR(t.circuit_delay_ns,
              3.0 * sched.folding.stages_per_plane * t.folding_cycle_ns,
              1e-9);
}

TEST(Sta, CriticalCycleIdentified) {
  Design d = make_ex1(8);
  ArchParams arch = ArchParams::paper_instance_unbounded_k();
  DesignSchedule sched = make_schedule(d, 2, arch);
  ClusteredDesign cd = temporal_cluster(d, sched, arch);
  Placement p;
  p.grid = size_grid_for(cd.num_smbs);
  for (int m = 0; m < cd.num_smbs; ++m) p.site_of_smb.push_back(m);
  TimingReport t = analyze_timing(d, sched, cd, p, nullptr, arch);
  double worst = 0.0;
  for (double c : t.cycle_period_ps) worst = std::max(worst, c);
  EXPECT_DOUBLE_EQ(
      t.cycle_period_ps[static_cast<std::size_t>(t.critical_cycle)], worst);
}

}  // namespace
}  // namespace nanomap
