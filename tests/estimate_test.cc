#include <gtest/gtest.h>

#include "circuits/benchmarks.h"
#include "core/estimate.h"
#include "flow/nanomap_flow.h"

namespace nanomap {
namespace {

TEST(Estimate, LevelDelayCombinesLutAndRouting) {
  ArchParams arch = ArchParams::paper_instance();
  double d = estimated_level_delay_ps(arch);
  EXPECT_GT(d, arch.lut_delay_ps);
  EXPECT_LT(d, arch.lut_delay_ps + arch.local_mux_delay_ps +
                   arch.len1_wire_delay_ps);
}

TEST(Estimate, FoldingCycleScalesWithLevel) {
  ArchParams arch = ArchParams::paper_instance();
  double c1 = estimated_folding_cycle_ps(arch, 1);
  double c2 = estimated_folding_cycle_ps(arch, 2);
  double c4 = estimated_folding_cycle_ps(arch, 4);
  // Each extra level adds one level delay; reconfig is charged once.
  EXPECT_NEAR(c2 - c1, estimated_level_delay_ps(arch), 1e-9);
  EXPECT_NEAR(c4 - c2, 2 * estimated_level_delay_ps(arch), 1e-9);
  EXPECT_THROW(estimated_folding_cycle_ps(arch, 0), CheckError);
}

TEST(Estimate, CircuitDelayFormulas) {
  ArchParams arch = ArchParams::paper_instance();
  CircuitParams p;
  p.num_plane = 2;
  p.depth_max = 12;
  p.lut_max = 100;
  p.total_luts = 180;

  FoldingConfig nofold = make_folding_config(p, 0);
  EXPECT_NEAR(estimated_circuit_delay_ns(p, nofold, arch),
              2 * 12 * estimated_level_delay_ps(arch) / 1000.0, 1e-9);

  FoldingConfig l3 = make_folding_config(p, 3);  // 4 stages
  EXPECT_NEAR(estimated_circuit_delay_ns(p, l3, arch),
              2 * 4 * estimated_folding_cycle_ps(arch, 3) / 1000.0, 1e-9);
}

TEST(Estimate, WithinFactorOfMeasuredSta) {
  // The pre-placement estimate steers the folding-level search; it must
  // stay within a small factor of the routed STA for the flow to make
  // sensible choices.
  for (const char* name : {"ex1", "FIR"}) {
    Design d = make_benchmark(name);
    for (int level : {0, 1, 2}) {
      FlowOptions opts;
      opts.arch = ArchParams::paper_instance_unbounded_k();
      opts.forced_folding_level = level;
      FlowResult r = run_nanomap(d, opts);
      ASSERT_TRUE(r.feasible) << r.message;
      EXPECT_LT(r.estimated_delay_ns, r.delay_ns * 2.5) << name << level;
      EXPECT_GT(r.estimated_delay_ns, r.delay_ns / 2.5) << name << level;
    }
  }
}

TEST(Estimate, MoreFoldingNeverEstimatesFaster) {
  ArchParams arch = ArchParams::paper_instance();
  CircuitParams p;
  p.num_plane = 1;
  p.depth_max = 24;
  p.lut_max = 500;
  p.total_luts = 500;
  double prev = 0.0;
  for (int level : {24, 12, 8, 6, 4, 3, 2, 1}) {
    double est = estimated_circuit_delay_ns(
        p, make_folding_config(p, level), arch);
    EXPECT_GE(est, prev - 1e-9) << "level " << level;
    prev = est;
  }
}

}  // namespace
}  // namespace nanomap
