// Executes a mapped design from its CONFIGURATION BITMAP — per cycle, per
// SMB, per LE, using only each LE's stored truth table and input-select
// codes (plus the placement table to know which value each LE produces) —
// and checks the results against the golden netlist simulator. This proves
// the bitmap generator captures everything the fabric needs to compute the
// original circuit.
#include <gtest/gtest.h>

#include "bitstream/bitmap.h"
#include "circuits/benchmarks.h"
#include "netlist/plane.h"
#include "netlist/simulate.h"
#include "util/rng.h"

namespace nanomap {
namespace {

struct Mapped {
  Design d;
  DesignSchedule sched;
  ClusteredDesign cd;
  ConfigBitmap bitmap;
};

Mapped map_design(Design design, int level, const ArchParams& arch) {
  Mapped m;
  m.d = std::move(design);
  CircuitParams p = extract_circuit_params(m.d.net);
  m.sched.folding = make_folding_config(p, level);
  m.sched.planes_share = !m.sched.folding.no_folding();
  for (int plane = 0; plane < p.num_plane; ++plane) {
    PlaneScheduleGraph g = build_schedule_graph(m.d, plane, m.sched.folding);
    m.sched.plane_results.push_back(schedule_plane(g, arch));
    m.sched.graphs.push_back(std::move(g));
  }
  m.cd = temporal_cluster(m.d, m.sched, arch);
  m.bitmap = generate_bitmap(m.d, m.sched, m.cd, nullptr, arch);
  return m;
}

// Interprets the bitmap for `steps` clocks against the golden simulator.
void expect_bitmap_executes(Mapped& m, const ArchParams& arch,
                            std::uint64_t seed, int steps = 8) {
  const LutNetwork& net = m.d.net;

  // LE -> produced node id, from the placement table (the fabric knows
  // this implicitly: an LE's output code IS its configured function).
  // produced[cycle][smb][slot] = node id or -1.
  auto produced = [&](int c, int smb, int slot) -> int {
    for (int id : m.cd.luts_in[static_cast<std::size_t>(c)]
                              [static_cast<std::size_t>(smb)]) {
      if (m.cd.place[static_cast<std::size_t>(id)].slot == slot) return id;
    }
    return -1;
  };

  Simulator golden(net);
  golden.reset(false);
  std::vector<char> value(static_cast<std::size_t>(net.size()), 0);
  std::vector<char> ff_state(static_cast<std::size_t>(net.size()), 0);

  std::vector<int> inputs;
  for (int id = 0; id < net.size(); ++id)
    if (net.node(id).kind == NodeKind::kInput) inputs.push_back(id);

  Rng rng(seed);
  for (int s = 0; s < steps; ++s) {
    for (int pi : inputs) {
      bool v = rng.next_bool();
      golden.set_input(pi, v);
      value[static_cast<std::size_t>(pi)] = v ? 1 : 0;
    }
    for (int id = 0; id < net.size(); ++id)
      if (net.node(id).kind == NodeKind::kFlipFlop)
        value[static_cast<std::size_t>(id)] =
            ff_state[static_cast<std::size_t>(id)];

    // Execute the bitmap cycle by cycle, evaluating configured LEs in
    // level order (same-cycle chains can cross SMBs).
    for (int c = 0; c < m.bitmap.num_cycles; ++c) {
      const CycleConfig& cc = m.bitmap.cycles[static_cast<std::size_t>(c)];
      std::vector<std::pair<int, std::pair<int, int>>> order;
      for (int smb = 0; smb < m.bitmap.num_smbs; ++smb) {
        const SmbConfig& sc = cc.smbs[static_cast<std::size_t>(smb)];
        for (std::size_t slot = 0; slot < sc.les.size(); ++slot) {
          if (!sc.les[slot].lut_used) continue;
          int node = produced(c, smb, static_cast<int>(slot));
          ASSERT_GE(node, 0) << "configured LE with no producing node";
          order.push_back({net.node(node).level,
                           {smb, static_cast<int>(slot)}});
        }
      }
      std::sort(order.begin(), order.end());
      for (const auto& [level, loc] : order) {
        const LeConfig& le = cc.smbs[static_cast<std::size_t>(loc.first)]
                                 .les[static_cast<std::size_t>(loc.second)];
        std::uint64_t minterm = 0;
        for (std::size_t i = 0; i < le.input_sel.size(); ++i) {
          int src = static_cast<int>(le.input_sel[i]) - 1;
          ASSERT_GE(src, 0);
          if (value[static_cast<std::size_t>(src)])
            minterm |= (std::uint64_t{1} << i);
        }
        int node = produced(c, loc.first, loc.second);
        value[static_cast<std::size_t>(node)] =
            ((le.truth >> minterm) & 1u) ? 1 : 0;
      }
    }

    // Register commit (wiring from the netlist, as the fabric's FF routing
    // would encode).
    for (int id = 0; id < net.size(); ++id) {
      const LutNode& n = net.node(id);
      if (n.kind == NodeKind::kFlipFlop)
        ff_state[static_cast<std::size_t>(id)] =
            value[static_cast<std::size_t>(n.fanins[0])];
    }

    golden.step();
    golden.evaluate();
    for (int id = 0; id < net.size(); ++id) {
      if (net.node(id).kind == NodeKind::kFlipFlop) {
        ASSERT_EQ(ff_state[static_cast<std::size_t>(id)] != 0,
                  golden.value(id))
            << "step " << s << " register " << net.node(id).name;
      }
    }
  }
  (void)arch;
}

TEST(BitmapExecution, Ex1AcrossFoldingLevels) {
  ArchParams arch = ArchParams::paper_instance_unbounded_k();
  for (int level : {0, 1, 2, 4}) {
    Mapped m = map_design(make_ex1(4), level, arch);
    expect_bitmap_executes(m, arch, 70 + static_cast<std::uint64_t>(level));
  }
}

TEST(BitmapExecution, MultiPlaneEx2) {
  ArchParams arch = ArchParams::paper_instance_unbounded_k();
  Mapped m = map_design(make_ex2(5), 2, arch);
  expect_bitmap_executes(m, arch, 81);
}

TEST(BitmapExecution, GateLevelDesign) {
  ArchParams arch = ArchParams::paper_instance_unbounded_k();
  Mapped m = map_design(make_c5315(5), 3, arch);
  expect_bitmap_executes(m, arch, 91, 5);
}

}  // namespace
}  // namespace nanomap
