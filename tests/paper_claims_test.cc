// Integration tests pinning the paper's headline claims (the "shape" of
// Table 1 and the §5 observations), so regressions in any flow stage that
// would break the reproduction fail CI. Uses the smaller benchmarks to
// keep the suite fast; bench/ regenerates the full tables.
#include <gtest/gtest.h>

#include "circuits/benchmarks.h"
#include "flow/nanomap_flow.h"

namespace nanomap {
namespace {

FlowResult run_at(const Design& d, int forced_level, bool k16 = false) {
  FlowOptions opts;
  opts.arch = k16 ? ArchParams::paper_instance()
                  : ArchParams::paper_instance_unbounded_k();
  opts.objective = Objective::kAreaDelayProduct;
  opts.forced_folding_level = forced_level;
  return run_nanomap(d, opts);
}

class HeadlineClaims : public ::testing::TestWithParam<std::string> {};

// Table 1 shape: temporal folding cuts LEs by >3X and improves the AT
// product by >2X over no-folding, at a bounded delay increase.
TEST_P(HeadlineClaims, FoldingWinsAreaAndAtProduct) {
  Design d = make_benchmark(GetParam());
  FlowResult flat = run_at(d, 0);
  FlowResult folded = run_at(d, -1);
  ASSERT_TRUE(flat.feasible) << flat.message;
  ASSERT_TRUE(folded.feasible) << folded.message;

  double le_reduction =
      static_cast<double>(flat.num_les) / folded.num_les;
  double at_improvement =
      flat.area_delay_product() / folded.area_delay_product();
  double delay_increase = folded.delay_ns / flat.delay_ns;

  EXPECT_GT(le_reduction, 3.0) << GetParam();
  EXPECT_GT(at_improvement, 1.5) << GetParam();
  EXPECT_LT(delay_increase, 2.2) << GetParam();
  // AT optimization picks deep folding when k is unbounded (paper: level 1
  // in every row; our physical timing occasionally prefers level 2).
  EXPECT_LE(folded.folding.level, 2) << GetParam();
}

// §5: "global interconnect usage went down by more than 50% when using
// level-1 folding as opposed to no-folding."
TEST_P(HeadlineClaims, GlobalInterconnectUsageDrops) {
  Design d = make_benchmark(GetParam());
  FlowResult flat = run_at(d, 0);
  FlowResult folded = run_at(d, 1);
  ASSERT_TRUE(flat.feasible) << flat.message;
  ASSERT_TRUE(folded.feasible) << folded.message;
  double flat_global = static_cast<double>(flat.routing.usage.global) /
                       std::max<std::size_t>(1, flat.routing.nets.size());
  double folded_global =
      static_cast<double>(folded.routing.usage.global) /
      std::max<std::size_t>(1, folded.routing.nets.size());
  EXPECT_LT(folded_global, 0.5 * flat_global + 1e-9) << GetParam();
}

// §5: mapping CPU time was under a minute per benchmark on a 2 GHz PC.
TEST_P(HeadlineClaims, MappingIsFast) {
  Design d = make_benchmark(GetParam());
  FlowResult r = run_at(d, -1, /*k16=*/true);
  ASSERT_TRUE(r.feasible) << r.message;
  EXPECT_LT(r.cpu_seconds, 60.0);
}

// Eq. 3: with k = 16 the folding level never produces more configurations
// than the NRAM holds.
TEST_P(HeadlineClaims, NramDepthRespected) {
  Design d = make_benchmark(GetParam());
  FlowResult r = run_at(d, -1, /*k16=*/true);
  ASSERT_TRUE(r.feasible) << r.message;
  EXPECT_LE(r.bitmap.num_cycles, 16);
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, HeadlineClaims,
                         ::testing::Values("ex1", "FIR", "c5315"));

TEST(HeadlineClaims, MotivationalExampleFollowsPaperSection3) {
  // Paper §3: under a 32-LE constraint, the 4-bit ex1 needs folding; the
  // flow must find a level whose every stage fits 32 LEs.
  Design d = make_ex1_motivational();
  FlowOptions opts;
  opts.arch = ArchParams::paper_instance();
  opts.objective = Objective::kMinDelay;
  opts.area_constraint_le = 32;
  FlowResult r = run_nanomap(d, opts);
  ASSERT_TRUE(r.feasible) << r.message;
  EXPECT_LE(r.num_les, 32);
  EXPECT_GE(r.folding.stages_per_plane, 2);
  for (const FdsResult& fr : r.plane_schedules) {
    for (std::size_t s = 1; s < fr.le_count.size(); ++s)
      EXPECT_LE(fr.le_count[s], 32);
  }
}

TEST(HeadlineClaims, AverageLeReductionIsOrderOfMagnitude) {
  // Across the three fast benchmarks the average LE reduction should be
  // well past 5X (paper: 14.8X average across all seven).
  double sum = 0.0;
  int count = 0;
  for (const char* name : {"ex1", "FIR", "c5315"}) {
    Design d = make_benchmark(name);
    FlowResult flat = run_at(d, 0);
    FlowResult folded = run_at(d, -1);
    ASSERT_TRUE(flat.feasible && folded.feasible);
    sum += static_cast<double>(flat.num_les) / folded.num_les;
    ++count;
  }
  EXPECT_GT(sum / count, 5.0);
}

}  // namespace
}  // namespace nanomap
