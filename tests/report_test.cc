// Schema validation for the machine-readable run report (--report=json,
// docs/FORMATS.md "Run report" schema version 1) and for the shared JSON
// utility (util/json.h) it is built on. The report is parsed back with
// the real parser and checked field by field — a schema change that
// breaks consumers fails here, not in a downstream dashboard.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "flow/nanomap_flow.h"
#include "map/bench_format.h"
#include "util/json.h"
#include "util/trace.h"

namespace nanomap {
namespace {

Design s27_design() {
  return parse_bench_file(NMAP_TEST_DESIGN_DIR "/s27.bench");
}

FlowResult traced_run() {
  FlowOptions opts;
  opts.arch = ArchParams::paper_instance();
  opts.seed = 42;
  opts.threads = 2;
  opts.placement.restarts = 2;
  opts.collect_trace = true;
  FlowResult r = run_nanomap(s27_design(), opts);
  EXPECT_TRUE(r.feasible) << r.message;
  return r;
}

const JsonValue& field(const JsonValue& obj, const std::string& name,
                       JsonValue::Kind kind) {
  const JsonValue* v = obj.find(name);
  EXPECT_NE(v, nullptr) << "missing field \"" << name << "\"";
  if (v == nullptr) {
    static const JsonValue null_value;
    return null_value;
  }
  EXPECT_EQ(static_cast<int>(v->kind), static_cast<int>(kind))
      << "field \"" << name << "\" has the wrong JSON type";
  return *v;
}

// --- util/json.h -----------------------------------------------------------

TEST(Json, QuoteEscapesEverythingMandatory) {
  EXPECT_EQ(json_quote("plain"), "\"plain\"");
  EXPECT_EQ(json_quote("a\"b\\c"), "\"a\\\"b\\\\c\"");
  EXPECT_EQ(json_quote("x\n\t\r"), "\"x\\n\\t\\r\"");
  EXPECT_EQ(json_quote(std::string("\x01", 1)), "\"\\u0001\"");
}

TEST(Json, NumbersRoundTripExactly) {
  EXPECT_EQ(json_number(42.0), "42");
  EXPECT_EQ(json_number(-3.0), "-3");
  const double v = 0.1 + 0.2;
  JsonValue parsed = parse_json(json_number(v));
  ASSERT_EQ(parsed.kind, JsonValue::Kind::kNumber);
  EXPECT_EQ(parsed.number, v);  // shortest-round-trip must be bit-exact
  EXPECT_EQ(json_number(0.25), "0.25");
  EXPECT_EQ(json_number(2.29), "2.29");
}

TEST(Json, WriterAndParserRoundTrip) {
  JsonWriter w;
  w.begin_object();
  w.field("name", "s27");
  w.field("ok", true);
  w.key("rows");
  w.begin_array();
  w.value(1);
  w.value(2.5);
  w.value("three");
  w.end();
  w.key("nested");
  w.begin_object();
  w.field("x", -7L);
  w.end();
  w.end();
  JsonValue v = parse_json(w.str());
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(field(v, "name", JsonValue::Kind::kString).string, "s27");
  EXPECT_TRUE(field(v, "ok", JsonValue::Kind::kBool).boolean);
  const JsonValue& rows = field(v, "rows", JsonValue::Kind::kArray);
  ASSERT_EQ(rows.items.size(), 3u);
  EXPECT_EQ(rows.items[0].number, 1.0);
  EXPECT_EQ(rows.items[1].number, 2.5);
  EXPECT_EQ(rows.items[2].string, "three");
  const JsonValue& nested = field(v, "nested", JsonValue::Kind::kObject);
  EXPECT_EQ(field(nested, "x", JsonValue::Kind::kNumber).number, -7.0);
}

TEST(Json, CompactModeIsOneLineAndParsesIdentically) {
  auto build = [](bool compact) {
    JsonWriter w(compact);
    w.begin_object();
    w.field("name", "s27");
    w.key("rows");
    w.begin_array();
    w.value(1);
    w.value(2.5);
    w.end();
    w.key("nested");
    w.begin_object();
    w.field("ok", true);
    w.end();
    w.key("raw");
    w.raw("{\"x\":7}");  // embed-a-finished-document hook
    w.end();
    return w.str();
  };
  const std::string compact = build(true);
  const std::string pretty = build(false);

  // Exactly one line, no trailing newline, no indentation whitespace.
  EXPECT_EQ(compact.find('\n'), std::string::npos);
  EXPECT_EQ(compact,
            "{\"name\":\"s27\",\"rows\":[1,2.5],"
            "\"nested\":{\"ok\":true},\"raw\":{\"x\":7}}");
  EXPECT_EQ(pretty.back(), '\n');

  // Both dialects parse to the same document.
  JsonValue a = parse_json(compact);
  JsonValue b = parse_json(pretty);
  EXPECT_EQ(field(a, "name", JsonValue::Kind::kString).string,
            field(b, "name", JsonValue::Kind::kString).string);
  EXPECT_EQ(field(a, "rows", JsonValue::Kind::kArray).items.size(),
            field(b, "rows", JsonValue::Kind::kArray).items.size());
  const JsonValue& raw = field(a, "raw", JsonValue::Kind::kObject);
  EXPECT_EQ(field(raw, "x", JsonValue::Kind::kNumber).number, 7.0);
}

TEST(Report, CompactJsonMatchesIndentedJson) {
  FlowResult r = traced_run();
  const std::string compact = r.report.to_json(/*include_timings=*/false,
                                               /*compact=*/true);
  EXPECT_EQ(compact.find('\n'), std::string::npos);
  // Same document, byte-normalized through the parser's field order.
  JsonValue a = parse_json(compact);
  JsonValue b = parse_json(r.report.to_json(/*include_timings=*/false));
  ASSERT_TRUE(a.is_object());
  ASSERT_EQ(a.fields.size(), b.fields.size());
  for (std::size_t i = 0; i < a.fields.size(); ++i)
    EXPECT_EQ(a.fields[i].first, b.fields[i].first);
}

TEST(Json, ParserRejectsMalformedInput) {
  EXPECT_THROW(parse_json(""), InputError);
  EXPECT_THROW(parse_json("{"), InputError);
  EXPECT_THROW(parse_json("{\"a\": }"), InputError);
  EXPECT_THROW(parse_json("[1, 2,]"), InputError);
  EXPECT_THROW(parse_json("\"unterminated"), InputError);
  EXPECT_THROW(parse_json("{} trailing"), InputError);
  EXPECT_THROW(parse_json("nul"), InputError);
  std::string deep(100, '[');
  EXPECT_THROW(parse_json(deep), InputError);
}

TEST(Json, ParserHandlesEscapesAndKeywords) {
  JsonValue v = parse_json(R"({"s": "a\u0041\n", "t": true, "n": null})");
  EXPECT_EQ(field(v, "s", JsonValue::Kind::kString).string, "aA\n");
  EXPECT_TRUE(field(v, "t", JsonValue::Kind::kBool).boolean);
  EXPECT_EQ(field(v, "n", JsonValue::Kind::kNull).kind,
            JsonValue::Kind::kNull);
}

// --- run-report schema -----------------------------------------------------

TEST(Report, DocumentMatchesSchemaVersion1) {
  FlowResult r = traced_run();
  JsonValue doc = parse_json(r.report.to_json());
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(field(doc, "version", JsonValue::Kind::kNumber).number,
            RunReport::kSchemaVersion);

  const JsonValue& run = field(doc, "run", JsonValue::Kind::kObject);
  EXPECT_EQ(field(run, "objective", JsonValue::Kind::kString).string,
            "area-delay-product");
  EXPECT_EQ(field(run, "seed", JsonValue::Kind::kNumber).number, 42.0);
  EXPECT_EQ(field(run, "threads", JsonValue::Kind::kNumber).number, 2.0);
  EXPECT_TRUE(field(run, "trace_enabled", JsonValue::Kind::kBool).boolean);

  const JsonValue& outcome = field(doc, "outcome", JsonValue::Kind::kObject);
  EXPECT_TRUE(field(outcome, "feasible", JsonValue::Kind::kBool).boolean);
  EXPECT_EQ(field(outcome, "error_kind", JsonValue::Kind::kString).string,
            "none");
  EXPECT_GE(field(outcome, "levels_tried", JsonValue::Kind::kNumber).number,
            1.0);
  field(outcome, "cpu_seconds", JsonValue::Kind::kNumber);

  const JsonValue& circuit = field(doc, "circuit", JsonValue::Kind::kObject);
  EXPECT_GT(field(circuit, "total_luts", JsonValue::Kind::kNumber).number,
            0.0);
  field(circuit, "num_planes", JsonValue::Kind::kNumber);
  field(circuit, "total_flipflops", JsonValue::Kind::kNumber);
  field(circuit, "depth_max", JsonValue::Kind::kNumber);

  const JsonValue& result = field(doc, "result", JsonValue::Kind::kObject);
  for (const char* key :
       {"folding_level", "stages_per_plane", "num_cycles", "num_les",
        "num_smbs", "area_um2", "peak_ffs", "delay_ns", "folding_cycle_ns",
        "estimated_delay_ns", "area_delay_product", "bitmap_bits",
        "router_iterations"}) {
    field(result, key, JsonValue::Kind::kNumber);
  }
  EXPECT_GT(field(result, "num_les", JsonValue::Kind::kNumber).number, 0.0);
  EXPECT_GT(field(result, "delay_ns", JsonValue::Kind::kNumber).number, 0.0);

  const JsonValue& events = field(doc, "events", JsonValue::Kind::kArray);
  for (const JsonValue& e : events.items) {
    ASSERT_TRUE(e.is_object());
    field(e, "stage", JsonValue::Kind::kString);
    field(e, "level", JsonValue::Kind::kNumber);
    field(e, "attempt", JsonValue::Kind::kNumber);
    field(e, "kind", JsonValue::Kind::kString);
    field(e, "action", JsonValue::Kind::kString);
    field(e, "detail", JsonValue::Kind::kString);
  }

  const JsonValue& stages = field(doc, "stages", JsonValue::Kind::kArray);
  ASSERT_FALSE(stages.items.empty());
  EXPECT_EQ(field(stages.items[0], "path", JsonValue::Kind::kString).string,
            "flow");
  std::set<std::string> paths;
  for (const JsonValue& s : stages.items) {
    ASSERT_TRUE(s.is_object());
    paths.insert(field(s, "path", JsonValue::Kind::kString).string);
    EXPECT_GE(field(s, "calls", JsonValue::Kind::kNumber).number, 1.0);
    field(s, "wall_ms", JsonValue::Kind::kNumber);
  }
  // The physical stages of a feasible run must all appear in the tree.
  for (const char* want :
       {"flow/schedule", "flow/cluster", "flow/place", "flow/route",
        "flow/sta", "flow/bitmap"}) {
    EXPECT_TRUE(paths.count(want)) << "missing stage path " << want;
  }

  const JsonValue& counters = field(doc, "counters", JsonValue::Kind::kArray);
  ASSERT_FALSE(counters.items.empty());
  std::string prev;
  for (const JsonValue& c : counters.items) {
    ASSERT_TRUE(c.is_object());
    const std::string& site =
        field(c, "site", JsonValue::Kind::kString).string;
    EXPECT_LT(prev, site) << "counters must be sorted by site";
    prev = site;
    field(c, "value", JsonValue::Kind::kNumber);
  }

  const JsonValue& values = field(doc, "values", JsonValue::Kind::kArray);
  for (const JsonValue& v : values.items) {
    ASSERT_TRUE(v.is_object());
    field(v, "site", JsonValue::Kind::kString);
    EXPECT_GE(field(v, "count", JsonValue::Kind::kNumber).number, 1.0);
    field(v, "sum", JsonValue::Kind::kNumber);
    field(v, "min", JsonValue::Kind::kNumber);
    field(v, "max", JsonValue::Kind::kNumber);
  }
}

TEST(Report, MaskedTimingsAreZeroAndByteDeterministic) {
  FlowResult a = traced_run();
  FlowResult b = traced_run();
  std::string ja = a.report.to_json(/*include_timings=*/false);
  EXPECT_EQ(ja, b.report.to_json(false));
  JsonValue doc = parse_json(ja);
  EXPECT_EQ(field(field(doc, "outcome", JsonValue::Kind::kObject),
                  "cpu_seconds", JsonValue::Kind::kNumber)
                .number,
            0.0);
  for (const JsonValue& s :
       field(doc, "stages", JsonValue::Kind::kArray).items)
    EXPECT_EQ(field(s, "wall_ms", JsonValue::Kind::kNumber).number, 0.0);
}

TEST(Report, InfeasibleRunsStillProduceAValidDocument) {
  FlowOptions opts;
  opts.arch = ArchParams::paper_instance();
  opts.area_constraint_le = 1;  // impossible: nothing fits in one LE
  opts.delay_constraint_ns = 0.001;
  opts.objective = Objective::kMeetBoth;
  opts.collect_trace = true;
  FlowResult r = run_nanomap(s27_design(), opts);
  ASSERT_FALSE(r.feasible);
  JsonValue doc = parse_json(r.report.to_json());
  const JsonValue& outcome = field(doc, "outcome", JsonValue::Kind::kObject);
  EXPECT_FALSE(field(outcome, "feasible", JsonValue::Kind::kBool).boolean);
  EXPECT_NE(field(outcome, "error_kind", JsonValue::Kind::kString).string,
            "none");
  EXPECT_FALSE(field(doc, "events", JsonValue::Kind::kArray).items.empty());
}

TEST(Report, BuildRunReportIsExposedForTools) {
  // Tools (bench runners, tests) can assemble a report from a finished
  // result without re-running the flow.
  FlowOptions opts;
  opts.arch = ArchParams::paper_instance();
  opts.seed = 7;
  FlowResult r = run_nanomap(s27_design(), opts);
  ASSERT_TRUE(r.feasible);
  RunReport rebuilt = build_run_report(opts, r, TraceSnapshot{});
  EXPECT_EQ(rebuilt.to_json(false), r.report.to_json(false));
}

}  // namespace
}  // namespace nanomap
