// Alternative arithmetic architectures: Kogge-Stone prefix adder and
// radix-4 Booth multiplier, verified against integer semantics and
// compared structurally with the baseline ripple/array forms.
#include <gtest/gtest.h>

#include "netlist/simulate.h"
#include "rtl/module_expander.h"
#include "util/rng.h"

namespace nanomap {
namespace {

struct Fixture {
  Design d;
  SignalBus a, b;
  explicit Fixture(int width) {
    a = add_input_bus(d, "a", width, 0);
    b = add_input_bus(d, "b", width, 0);
  }
  void finish() {
    d.net.compute_levels();
    d.net.validate();
    d.refresh_module_stats();
  }
};

TEST(PrefixAdder, Exhaustive5Bit) {
  Fixture f(5);
  ExpandedModule m = expand_prefix_adder(f.d, "ks", f.a, f.b, 0);
  f.finish();
  Simulator sim(f.d.net);
  for (unsigned x = 0; x < 32; ++x) {
    for (unsigned y = 0; y < 32; ++y) {
      sim.set_input_bus(f.a, x);
      sim.set_input_bus(f.b, y);
      sim.evaluate();
      EXPECT_EQ(sim.read_bus(m.out), (x + y) & 31u) << x << "+" << y;
      EXPECT_EQ(sim.value(m.carry_out), (x + y) > 31u) << x << "+" << y;
    }
  }
}

TEST(PrefixAdder, LogDepthVsRippleLinearDepth) {
  Fixture ks(16);
  expand_prefix_adder(ks.d, "ks", ks.a, ks.b, 0);
  ks.finish();
  Fixture rc(16);
  expand_adder(rc.d, "rc", rc.a, rc.b, 0);
  rc.finish();
  EXPECT_EQ(rc.d.module(0).depth, 16);          // ripple: one level per bit
  EXPECT_LE(ks.d.module(0).depth, 7);           // ~log2(16)+2
  EXPECT_GT(ks.d.module(0).num_luts, rc.d.module(0).num_luts);
}

TEST(BoothMultiplier, ExhaustiveLowHalf4Bit) {
  Fixture f(4);
  ExpandedModule m = expand_booth_multiplier(f.d, "bm", f.a, f.b, 0);
  f.finish();
  ASSERT_EQ(m.out.size(), 4u);
  Simulator sim(f.d.net);
  for (unsigned x = 0; x < 16; ++x) {
    for (unsigned y = 0; y < 16; ++y) {
      sim.set_input_bus(f.a, x);
      sim.set_input_bus(f.b, y);
      sim.evaluate();
      EXPECT_EQ(sim.read_bus(m.out), (x * y) & 15u) << x << "*" << y;
    }
  }
}

TEST(BoothMultiplier, ExhaustiveFullWidth5Bit) {
  Fixture f(5);
  ExpandedModule m = expand_booth_multiplier(f.d, "bm", f.a, f.b, 0, true);
  f.finish();
  ASSERT_EQ(m.out.size(), 10u);
  Simulator sim(f.d.net);
  for (unsigned x = 0; x < 32; ++x) {
    for (unsigned y = 0; y < 32; ++y) {
      sim.set_input_bus(f.a, x);
      sim.set_input_bus(f.b, y);
      sim.evaluate();
      EXPECT_EQ(sim.read_bus(m.out), x * y) << x << "*" << y;
    }
  }
}

class BoothWidths : public ::testing::TestWithParam<int> {};

TEST_P(BoothWidths, RandomVectorsMatchIntegerProduct) {
  const int width = GetParam();
  Fixture f(width);
  ExpandedModule m =
      expand_booth_multiplier(f.d, "bm", f.a, f.b, 0, /*full_width=*/true);
  f.finish();
  Simulator sim(f.d.net);
  Rng rng(static_cast<std::uint64_t>(width) * 131);
  const std::uint64_t mask = (1ull << width) - 1;
  for (int i = 0; i < 50; ++i) {
    std::uint64_t x = rng.next_u64() & mask;
    std::uint64_t y = rng.next_u64() & mask;
    sim.set_input_bus(f.a, x);
    sim.set_input_bus(f.b, y);
    sim.evaluate();
    EXPECT_EQ(sim.read_bus(m.out), x * y) << x << "*" << y;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BoothWidths,
                         ::testing::Values(2, 3, 6, 7, 8, 12, 16));

TEST(BoothMultiplier, HalvesPartialProductRows) {
  // Booth's depth advantage: ~n/2 carry-save levels vs ~n for the array.
  Fixture booth(16);
  expand_booth_multiplier(booth.d, "bm", booth.a, booth.b, 0, true);
  booth.finish();
  Fixture array(16);
  expand_multiplier(array.d, "am", array.a, array.b, 0, true);
  array.finish();
  EXPECT_LT(booth.d.module(0).depth, array.d.module(0).depth);
}

}  // namespace
}  // namespace nanomap
