// Resilience of the flow engine (DESIGN.md §5e).
//
// 1. Deterministic fault injection: for every registered site and every
//    exception kind, an armed flow must return a clean FlowResult —
//    recovered via the ladder / folding fallback, or feasible=false with
//    a populated typed diagnostics trail. Never a crash, never a thrown
//    exception, never a thread-count-dependent byte.
// 2. The recovery ladder: a pinned synthetic-congestion case that fails
//    at the default router budgets must be recovered by the escalation
//    ladder *without* a folding-level fallback, and the trail must record
//    exactly which rung succeeded.
// 3. Up-front FlowOptions/RouterOptions validation (InputError naming the
//    offending field).
#include <gtest/gtest.h>

#include <algorithm>

#include "bitstream/bitmap.h"
#include "circuits/benchmarks.h"
#include "circuits/random_dag.h"
#include "flow/nanomap_flow.h"
#include "route/pathfinder_reference.h"
#include "util/fault.h"

namespace nanomap {
namespace {

// --- fault plan parsing ----------------------------------------------------

TEST(FaultPlan, ParsesSiteHitAndKind) {
  FaultPlan p = parse_fault_plan("route.alloc");
  EXPECT_EQ(p.site, "route.alloc");
  EXPECT_EQ(p.nth_hit, 1);
  EXPECT_EQ(p.kind, FaultKind::kCheck);

  p = parse_fault_plan("place.screen:3");
  EXPECT_EQ(p.site, "place.screen");
  EXPECT_EQ(p.nth_hit, 3);

  p = parse_fault_plan("fds.schedule:2:alloc");
  EXPECT_EQ(p.kind, FaultKind::kAlloc);
  p = parse_fault_plan("fds.schedule:2:input");
  EXPECT_EQ(p.kind, FaultKind::kInput);
}

TEST(FaultPlan, RejectsMalformedPlans) {
  EXPECT_THROW(parse_fault_plan(""), InputError);
  EXPECT_THROW(parse_fault_plan(":1"), InputError);
  EXPECT_THROW(parse_fault_plan("site:"), InputError);
  EXPECT_THROW(parse_fault_plan("site:0"), InputError);
  EXPECT_THROW(parse_fault_plan("site:-1"), InputError);
  EXPECT_THROW(parse_fault_plan("site:abc"), InputError);
  EXPECT_THROW(parse_fault_plan("site:1:frobnicate"), InputError);
}

TEST(FaultPlan, ArmRejectsUnknownSites) {
  EXPECT_THROW(FaultInjector::instance().arm("no.such.site:1"), InputError);
  EXPECT_FALSE(FaultInjector::armed());
}

// --- the sweep -------------------------------------------------------------

FlowOptions small_flow_options() {
  FlowOptions opts;
  opts.arch = ArchParams::paper_instance_unbounded_k();
  opts.seed = 3;
  return opts;
}

FlowErrorKind expected_kind(const std::string& kind) {
  if (kind == "input") return FlowErrorKind::kInput;
  if (kind == "alloc") return FlowErrorKind::kResourceExhausted;
  return FlowErrorKind::kInternal;
}

bool trail_has_kind(const FlowDiagnostics& diag, FlowErrorKind kind) {
  for (const FlowEvent& e : diag.events)
    if (e.kind == kind) return true;
  return false;
}

// Every registered site, every exception kind: the armed flow never
// throws, and the injected failure is always visible in the typed trail.
// With a free folding-level search the flow recovers by falling back to
// another level, so the result additionally stays feasible.
TEST(FaultInjection, EverySiteEveryKindReturnsCleanResult) {
  Design d = make_ex1(4);
  for (const std::string& site : FaultInjector::known_sites()) {
    for (const char* kind : {"check", "input", "alloc"}) {
      FlowOptions opts = small_flow_options();
      opts.fault_plan = site + ":1:" + kind;
      FlowResult r;
      ASSERT_NO_THROW(r = run_nanomap(d, opts))
          << "site " << site << " kind " << kind;
      EXPECT_FALSE(FaultInjector::armed());  // FaultScope disarmed
      // The site must actually have been exercised.
      std::map<std::string, long> hits =
          FaultInjector::instance().hit_counts();
      EXPECT_GE(hits[site], 1) << site;
      // The injected failure is recorded with the right typed kind...
      EXPECT_TRUE(trail_has_kind(r.diagnostics, expected_kind(kind)))
          << "site " << site << " kind " << kind << "\n"
          << r.diagnostics.to_string();
      // ...and the free level search recovers around the one poisoned
      // stage call.
      EXPECT_TRUE(r.feasible)
          << "site " << site << " kind " << kind << ": " << r.message;
      if (r.feasible) {
        EXPECT_TRUE(r.routing.success);
      }
    }
  }
}

// With a forced folding level there is nothing to fall back to: the flow
// must degrade into a clean infeasible result whose error_kind matches
// the injected exception, with the trail populated.
TEST(FaultInjection, ForcedLevelDegradesCleanlyWithTypedKind) {
  Design d = make_ex1(6);  // level 2 maps cleanly without the fault
  for (const std::string& site : FaultInjector::known_sites()) {
    for (const char* kind : {"check", "input", "alloc"}) {
      FlowOptions opts = small_flow_options();
      opts.forced_folding_level = 2;
      opts.fault_plan = site + ":1:" + kind;
      // Keep the ladder from retrying past the injected single failure
      // where the retry would genuinely recover (that case is covered
      // above); what matters here is that *exhaustion* is clean.
      opts.recovery.placement_reseeds = 0;
      FlowResult r;
      ASSERT_NO_THROW(r = run_nanomap(d, opts))
          << "site " << site << " kind " << kind;
      EXPECT_FALSE(r.feasible) << "site " << site << " kind " << kind;
      EXPECT_FALSE(r.diagnostics.empty());
      EXPECT_EQ(r.error_kind, expected_kind(kind))
          << "site " << site << " kind " << kind << "\n"
          << r.diagnostics.to_string();
      EXPECT_FALSE(r.message.empty());
    }
  }
}

// Byte-identical results at --threads 1 vs N while a fault is armed: the
// fault sites sit in sequential flow code, so the Nth hit — and hence the
// whole recovery path — is thread-count independent.
TEST(FaultInjection, ArmedFlowIsThreadCountInvariant) {
  Design d = make_ex1(4);
  for (const std::string& site : FaultInjector::known_sites()) {
    FlowOptions opts = small_flow_options();
    opts.fault_plan = site + ":1:check";
    opts.placement.restarts = 3;   // give the pool real parallel work
    opts.router.batch_size = 4;
    opts.threads = 1;
    FlowResult serial = run_nanomap(d, opts);
    opts.threads = 4;
    FlowResult parallel = run_nanomap(d, opts);

    EXPECT_EQ(serial.feasible, parallel.feasible) << site;
    EXPECT_EQ(serial.message, parallel.message) << site;
    EXPECT_EQ(serial.diagnostics.to_string(),
              parallel.diagnostics.to_string())
        << site;
    EXPECT_EQ(serialize_bitmap(serial.bitmap),
              serialize_bitmap(parallel.bitmap))
        << site;
  }
}

// A later hit index fires mid-flow (the AT ranking schedules every
// candidate level up front, so hit 2 poisons the second schedule_plane
// call), proving hits count deterministically.
TEST(FaultInjection, NthHitTargetsLaterStageCalls) {
  Design d = make_ex1(4);
  FlowOptions opts = small_flow_options();
  opts.fault_plan = "fds.schedule:2:check";
  FlowResult r;
  ASSERT_NO_THROW(r = run_nanomap(d, opts));
  std::map<std::string, long> hits = FaultInjector::instance().hit_counts();
  EXPECT_GE(hits["fds.schedule"], 2);
  EXPECT_TRUE(trail_has_kind(r.diagnostics, FlowErrorKind::kInternal));
  EXPECT_TRUE(r.feasible) << r.message;
}

// route.converge faults × incremental router state (DESIGN.md §5g). The
// ladder keeps an RR graph and a RouteState alive across its rungs; a
// faulted climb must drop both. Arm the fault at increasing hit indices
// so it fires at different depths of the incremental state build-up
// (rung 0 cold, rung 1 with a warm cycle cache, a later level's fresh
// climb) on a congested fabric that actually exercises the ladder, and
// prove the recovery never ships stale cached trees: the final routing
// replays byte-identically on the verbatim seed router from the winning
// rung's fabric + budgets, and results are threads-1-vs-4 byte-identical.
TEST(FaultInjection, RouteConvergeFaultNeverLeavesStaleRouteState) {
  RandomDagSpec spec;
  spec.luts_per_plane = 80;
  spec.depth = 5;
  spec.num_inputs = 24;
  spec.seed = 9;
  Design d = make_random_design(spec);

  auto make_options = [] {
    FlowOptions opts;
    opts.arch = ArchParams::paper_instance_unbounded_k();
    opts.arch.direct_links_per_side = 2;
    opts.arch.len1_tracks = 3;
    opts.arch.len4_tracks = 2;
    opts.arch.global_tracks = 1;
    opts.router.max_iterations = 2;  // starved: the ladder must climb
    opts.router.batch_size = 4;      // give the pool real parallel work
    opts.seed = 3;
    return opts;
  };

  // Probe how many route_design calls the clean flow makes (an armed
  // plan counts hits even when its hit index is never reached), and make
  // sure the ladder genuinely climbs — otherwise the sweep below would
  // only ever fault cold router state.
  int clean_hits = 0;
  {
    FlowOptions opts = make_options();
    opts.fault_plan = "route.converge:1000:check";
    FlowResult probe = run_nanomap(d, opts);
    ASSERT_TRUE(probe.feasible) << probe.message;
    std::map<std::string, long> hits = FaultInjector::instance().hit_counts();
    clean_hits = static_cast<int>(hits["route.converge"]);
    ASSERT_GE(clean_hits, 2)
        << "fabric no longer starves rung 0; re-pin the congestion case";
  }

  // The clean run's first nth-1 route calls are a deterministic prefix of
  // the faulted run, so every swept index is guaranteed to fire.
  for (int nth = 1; nth <= std::min(clean_hits, 3); ++nth) {
    FlowOptions opts = make_options();
    opts.fault_plan = "route.converge:" + std::to_string(nth) + ":check";

    opts.threads = 1;
    FlowResult serial;
    ASSERT_NO_THROW(serial = run_nanomap(d, opts)) << "hit " << nth;
    opts.threads = 4;
    FlowResult parallel;
    ASSERT_NO_THROW(parallel = run_nanomap(d, opts)) << "hit " << nth;

    // The armed hit index is reached in sequential flow code, so the
    // whole recovery path is thread-count independent, byte for byte.
    EXPECT_EQ(serial.feasible, parallel.feasible) << "hit " << nth;
    EXPECT_EQ(serial.message, parallel.message) << "hit " << nth;
    EXPECT_EQ(serial.diagnostics.to_string(), parallel.diagnostics.to_string())
        << "hit " << nth;
    EXPECT_EQ(serialize_bitmap(serial.bitmap), serialize_bitmap(parallel.bitmap))
        << "hit " << nth;

    // The injected failure fired and is visible in the typed trail...
    std::map<std::string, long> hits = FaultInjector::instance().hit_counts();
    ASSERT_GE(hits["route.converge"], nth) << "hit " << nth;
    EXPECT_TRUE(trail_has_kind(serial.diagnostics, FlowErrorKind::kInternal))
        << "hit " << nth << "\n" << serial.diagnostics.to_string();

    // ...and the free level search recovered around the poisoned climb.
    ASSERT_TRUE(serial.feasible) << "hit " << nth << ": " << serial.message;
    EXPECT_TRUE(serial.routing.success) << "hit " << nth;

    // No stale caches: a cold reference re-route of the shipped
    // placement on the winning fabric reproduces the shipped routing
    // exactly.
    RrGraph rr(serial.placement.placement.grid, serial.routed_arch);
    RoutingResult ref =
        route_nets_reference(serial.clustered, serial.placement.placement, rr,
                             serial.routed_router);
    EXPECT_EQ(serial.routing.success, ref.success) << "hit " << nth;
    EXPECT_EQ(serial.routing.worst_iterations, ref.worst_iterations)
        << "hit " << nth;
    ASSERT_EQ(serial.routing.nets.size(), ref.nets.size()) << "hit " << nth;
    for (std::size_t i = 0; i < ref.nets.size(); ++i) {
      EXPECT_EQ(serial.routing.nets[i].net_index, ref.nets[i].net_index);
      EXPECT_EQ(serial.routing.nets[i].sink_smbs, ref.nets[i].sink_smbs);
      EXPECT_EQ(serial.routing.nets[i].sink_delay_ps,
                ref.nets[i].sink_delay_ps)
          << "hit " << nth << " net " << i;
      EXPECT_EQ(serial.routing.nets[i].wire_nodes, ref.nets[i].wire_nodes)
          << "hit " << nth << " net " << i;
    }
  }
}

// --- the recovery ladder ---------------------------------------------------

// Synthetic congestion: a fabric with narrowed channels and a router
// budget too small to negotiate it. Pinned behavior: rung 0 (default
// budgets) fails, rung 1 (raised max_iterations/pres_fac schedule)
// recovers — no folding-level fallback, no placement reseed.
TEST(RecoveryLadder, RouterBudgetRungRecoversPinnedCongestionCase) {
  RandomDagSpec spec;
  spec.luts_per_plane = 80;
  spec.depth = 5;
  spec.num_inputs = 24;
  spec.seed = 9;
  Design d = make_random_design(spec);

  FlowOptions opts;
  opts.arch = ArchParams::paper_instance_unbounded_k();
  opts.arch.direct_links_per_side = 4;
  opts.arch.len1_tracks = 6;
  opts.arch.len4_tracks = 3;
  opts.arch.global_tracks = 2;
  opts.forced_folding_level = 0;  // fallback impossible: the ladder must win
  opts.router.max_iterations = 2;  // default budget: too small to converge

  FlowResult r = run_nanomap(d, opts);
  ASSERT_TRUE(r.feasible) << r.message << "\n" << r.diagnostics.to_string();
  EXPECT_TRUE(r.routing.success);
  EXPECT_EQ(r.levels_tried, 1);

  int congestion_failures = 0;
  std::string recovered_detail;
  for (const FlowEvent& e : r.diagnostics.events) {
    if (e.stage == "route" && e.kind == FlowErrorKind::kRoutingCongestion)
      ++congestion_failures;
    if (e.stage == "route" && e.action == "recovered")
      recovered_detail = e.detail;
    EXPECT_NE(e.action, "retry") << "no placement reseed expected";
  }
  EXPECT_EQ(congestion_failures, 1);  // exactly rung 0 failed
  ASSERT_FALSE(recovered_detail.empty()) << r.diagnostics.to_string();
  EXPECT_NE(recovered_detail.find("rung 1"), std::string::npos)
      << recovered_detail;
  EXPECT_NE(recovered_detail.find("raised router budgets"),
            std::string::npos)
      << recovered_detail;
}

// Same fabric, narrower still: the budget rung alone is not enough and a
// channel-width bump rung recovers.
TEST(RecoveryLadder, ChannelBumpRungRecoversNarrowerFabric) {
  RandomDagSpec spec;
  spec.luts_per_plane = 80;
  spec.depth = 5;
  spec.num_inputs = 24;
  spec.seed = 9;
  Design d = make_random_design(spec);

  FlowOptions opts;
  opts.arch = ArchParams::paper_instance_unbounded_k();
  opts.arch.direct_links_per_side = 4;
  opts.arch.len1_tracks = 4;
  opts.arch.len4_tracks = 3;
  opts.arch.global_tracks = 2;
  opts.forced_folding_level = 0;
  opts.router.max_iterations = 2;

  FlowResult r = run_nanomap(d, opts);
  ASSERT_TRUE(r.feasible) << r.message << "\n" << r.diagnostics.to_string();
  std::string recovered_detail;
  for (const FlowEvent& e : r.diagnostics.events)
    if (e.stage == "route" && e.action == "recovered")
      recovered_detail = e.detail;
  ASSERT_FALSE(recovered_detail.empty()) << r.diagnostics.to_string();
  EXPECT_NE(recovered_detail.find("widened channels"), std::string::npos)
      << recovered_detail;
}

// The ladder itself is thread-count invariant (reseeds use derive_seed
// streams, rung order is fixed).
TEST(RecoveryLadder, EscalatedResultIsThreadCountInvariant) {
  RandomDagSpec spec;
  spec.luts_per_plane = 80;
  spec.depth = 5;
  spec.num_inputs = 24;
  spec.seed = 9;
  Design d = make_random_design(spec);

  FlowOptions opts;
  opts.arch = ArchParams::paper_instance_unbounded_k();
  opts.arch.direct_links_per_side = 4;
  opts.arch.len1_tracks = 6;
  opts.arch.len4_tracks = 3;
  opts.arch.global_tracks = 2;
  opts.forced_folding_level = 0;
  opts.router.max_iterations = 2;
  opts.placement.restarts = 3;
  opts.router.batch_size = 4;

  opts.threads = 1;
  FlowResult serial = run_nanomap(d, opts);
  opts.threads = 4;
  FlowResult parallel = run_nanomap(d, opts);
  ASSERT_TRUE(serial.feasible) << serial.message;
  EXPECT_EQ(serial.message, parallel.message);
  EXPECT_EQ(serial.diagnostics.to_string(),
            parallel.diagnostics.to_string());
  EXPECT_EQ(serialize_bitmap(serial.bitmap),
            serialize_bitmap(parallel.bitmap));
  EXPECT_DOUBLE_EQ(serial.delay_ns, parallel.delay_ns);
}

// Graceful degradation records *why* no-folding cannot rescue an
// over-constrained run instead of silently returning infeasible.
TEST(RecoveryLadder, DegradationTrailExplainsConstraintConflicts) {
  Design d = make_ex1(8);
  FlowOptions opts;
  opts.arch = ArchParams::paper_instance_unbounded_k();
  opts.objective = Objective::kMeetBoth;
  opts.area_constraint_le = 5;     // less than any mapping can reach
  opts.delay_constraint_ns = 0.1;  // absurd
  FlowResult r = run_nanomap(d, opts);
  EXPECT_FALSE(r.feasible);
  EXPECT_EQ(r.error_kind, FlowErrorKind::kInfeasibleConstraint);
  ASSERT_FALSE(r.diagnostics.empty());
  bool saw_degrade = false, saw_reason = false;
  for (const FlowEvent& e : r.diagnostics.events) {
    if (e.action == "degrade") saw_degrade = true;
    if (e.action == "infeasible" &&
        e.detail.find("area constraint") != std::string::npos)
      saw_reason = true;
  }
  EXPECT_TRUE(saw_degrade) << r.diagnostics.to_string();
  EXPECT_TRUE(saw_reason) << r.diagnostics.to_string();
}

// --- option validation -----------------------------------------------------

TEST(OptionValidation, RejectsOutOfRangeFieldsNamingThem) {
  Design d = make_ex1(4);
  auto expect_reject = [&](auto mutate, const std::string& field) {
    FlowOptions opts = small_flow_options();
    mutate(&opts);
    try {
      run_nanomap(d, opts);
      FAIL() << "expected InputError for " << field;
    } catch (const InputError& e) {
      EXPECT_NE(std::string(e.what()).find(field), std::string::npos)
          << e.what();
    }
  };
  expect_reject([](FlowOptions* o) { o->threads = -1; }, "threads");
  expect_reject([](FlowOptions* o) { o->area_constraint_le = -5; },
                "area_constraint_le");
  expect_reject([](FlowOptions* o) { o->delay_constraint_ns = -1.0; },
                "delay_constraint_ns");
  expect_reject([](FlowOptions* o) { o->forced_folding_level = -2; },
                "forced_folding_level");
  expect_reject([](FlowOptions* o) { o->placement.restarts = 0; },
                "placement.restarts");
  expect_reject([](FlowOptions* o) { o->placement.max_refine_attempts = -1; },
                "placement.max_refine_attempts");
  expect_reject([](FlowOptions* o) { o->placement.fast_effort = 0.0; },
                "placement.fast_effort");
  expect_reject([](FlowOptions* o) { o->router.max_iterations = 0; },
                "router.max_iterations");
  expect_reject([](FlowOptions* o) { o->router.batch_size = 0; },
                "router.batch_size");
  expect_reject([](FlowOptions* o) { o->router.pres_fac_mult = -2.0; },
                "router.pres_fac_mult");
  expect_reject([](FlowOptions* o) { o->router.initial_pres_fac = 0.0; },
                "router.initial_pres_fac");
  expect_reject([](FlowOptions* o) { o->recovery.placement_reseeds = -1; },
                "recovery.placement_reseeds");
  expect_reject([](FlowOptions* o) { o->recovery.channel_bump_factor = 1.0; },
                "recovery.channel_bump_factor");
  expect_reject([](FlowOptions* o) { o->fault_plan = "bogus plan::"; },
                "fault plan");
}

TEST(OptionValidation, DefaultsValidate) {
  EXPECT_NO_THROW(validate_flow_options(FlowOptions{}));
}

}  // namespace
}  // namespace nanomap
