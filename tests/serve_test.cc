// Serving layer (src/serve/, docs/SERVING.md): the JSON-lines job
// protocol, the ordered concurrent stream, byte-determinism at any worker
// count and job order, typed per-job errors, per-job trace isolation, and
// the shared caches. Suite names start with "Serve" so the TSan CI lane
// picks them up (ctest -R ... |Serve).
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "serve/server.h"
#include "util/json.h"

namespace nanomap {
namespace {

// A cheap real job: ex1 at a forced folding level finishes in tens of
// milliseconds, so whole streams stay tier-1 friendly.
ServeJob quick_job(std::uint64_t seed) {
  ServeJob job;
  job.circuit = "bench:ex1";
  job.level = 2;
  job.seed = seed;
  return job;
}

struct ServeRun {
  std::string output;
  ServeSummary summary;
};

ServeRun run_serve(const std::string& input, int workers,
                   ServeCaches* caches = nullptr) {
  ServeOptions options;
  options.workers = workers;
  options.threads = 4;
  std::istringstream in(input);
  std::ostringstream out;
  ServeRun r;
  r.summary = serve_jobs(in, out, options, caches);
  r.output = out.str();
  return r;
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

// Drops the position-dependent "line" field so responses to the same job
// at different stream positions can be compared byte-for-byte.
std::string strip_line_field(const std::string& response) {
  std::string out = response;
  std::size_t at = out.find("\"line\":");
  EXPECT_NE(at, std::string::npos) << response;
  std::size_t end = out.find(',', at);
  EXPECT_NE(end, std::string::npos) << response;
  out.erase(at, end - at + 1);
  return out;
}

const JsonValue* get(const JsonValue& doc, const std::string& key) {
  const JsonValue* v = doc.find(key);
  EXPECT_NE(v, nullptr) << "missing key " << key;
  return v;
}

TEST(ServeJobLine, RoundTripsThroughTheRealParser) {
  ServeJob job;
  job.id = "my-job";
  job.circuit = "bench:FIR";
  job.objective = Objective::kMinDelay;
  job.seed = 1234567;
  job.level = 3;
  job.area = 128;
  job.delay = 55.5;
  job.arch_file = "x.arch";
  job.defects = "seed=7,le=0.01";
  job.no_share = true;
  job.deadline_ms = 250.0;
  job.trace = true;
  job.fault = "route.alloc:1";

  ServeJob parsed = parse_job_line(write_job_line(job), 1);
  EXPECT_EQ(parsed.id, job.id);
  EXPECT_EQ(parsed.circuit, job.circuit);
  EXPECT_EQ(parsed.objective, job.objective);
  ASSERT_TRUE(parsed.seed.has_value());
  EXPECT_EQ(*parsed.seed, *job.seed);
  EXPECT_EQ(parsed.level, job.level);
  EXPECT_EQ(parsed.area, job.area);
  EXPECT_EQ(parsed.delay, job.delay);
  EXPECT_EQ(parsed.arch_file, job.arch_file);
  EXPECT_EQ(parsed.defects, job.defects);
  EXPECT_EQ(parsed.no_share, job.no_share);
  EXPECT_EQ(parsed.deadline_ms, job.deadline_ms);
  EXPECT_EQ(parsed.trace, job.trace);
  EXPECT_EQ(parsed.fault, job.fault);

  // Defaults: only circuit survives serialization, and the parsed job
  // carries an unset seed (server default applies).
  ServeJob bare;
  bare.circuit = "bench:ex1";
  EXPECT_EQ(write_job_line(bare), "{\"circuit\":\"bench:ex1\"}");
  ServeJob bare_parsed = parse_job_line(write_job_line(bare), 3);
  EXPECT_FALSE(bare_parsed.seed.has_value());
  EXPECT_EQ(bare_parsed.level, -1);
  EXPECT_FALSE(bare_parsed.trace);
}

TEST(ServeJobLine, StrictParserRejectsHostileLines) {
  // Every rejection is a typed InputError naming the line.
  auto reject = [](const std::string& line) {
    try {
      parse_job_line(line, 7);
      ADD_FAILURE() << "accepted: " << line;
    } catch (const InputError& e) {
      EXPECT_NE(std::string(e.what()).find("job line 7"), std::string::npos)
          << e.what();
    }
  };
  reject("");                                      // empty document
  reject("not json");                              // token garbage
  reject("[]");                                    // not an object
  reject("42");                                    // not an object
  reject("{}");                                    // missing circuit
  reject("{\"circuit\":\"\"}");                    // empty circuit
  reject("{\"circuit\":\"bench:ex1\"");            // truncated
  reject("{\"circuit\":\"bench:ex1\",\"bogus\":1}");        // unknown key
  reject("{\"circuit\":\"a\",\"circuit\":\"b\"}");          // duplicate key
  reject("{\"circuit\":42}");                      // wrong type
  reject("{\"circuit\":\"a\",\"seed\":-1}");       // negative seed
  reject("{\"circuit\":\"a\",\"seed\":1.5}");      // fractional seed
  reject("{\"circuit\":\"a\",\"seed\":1e300}");    // seed past 2^53
  reject("{\"circuit\":\"a\",\"level\":-2}");      // level below -1
  reject("{\"circuit\":\"a\",\"area\":-1}");       // negative area
  reject("{\"circuit\":\"a\",\"deadline_ms\":-5}");  // negative deadline
  reject("{\"circuit\":\"a\",\"trace\":\"yes\"}");   // bool as string
  reject("{\"circuit\":\"a\",\"objective\":\"fast\"}");  // bad token
}

TEST(ServeStream, OneResponsePerNonBlankLineInInputOrder) {
  std::string input;
  for (int i = 0; i < 4; ++i)
    input += write_job_line(quick_job(100 + static_cast<std::uint64_t>(i))) +
             "\n";
  input.insert(input.find('\n') + 1, "\n");  // blank line after job 1

  ServeRun run = run_serve(input, /*workers=*/2);
  std::vector<std::string> responses = lines_of(run.output);
  ASSERT_EQ(responses.size(), 4u);  // the blank line got no response
  EXPECT_EQ(run.summary.jobs, 4);
  EXPECT_EQ(run.summary.done, 4);
  EXPECT_EQ(run.summary.feasible, 4);

  // Responses come back in input order: line numbers strictly ascend and
  // skip the blank line (1, 3, 4, 5).
  std::vector<double> expected_lines = {1, 3, 4, 5};
  for (std::size_t i = 0; i < responses.size(); ++i) {
    JsonValue doc = parse_json(responses[i]);
    EXPECT_EQ(get(doc, "line")->number, expected_lines[i]);
    EXPECT_EQ(get(doc, "status")->string, "done");
    EXPECT_EQ(get(doc, "serve_version")->number, 1.0);
    EXPECT_EQ(get(doc, "elapsed_ms")->number, 0.0);  // masked
  }
}

TEST(ServeStream, ByteIdenticalAcrossWorkerCountsAndReruns) {
  // A mixed stream: plain jobs, a traced job, an objective variant, and a
  // malformed line. Everything must come back byte-identical at workers
  // 1 and 4 and on a rerun.
  ServeJob first = quick_job(1);
  first.id = "dup";
  std::string input;
  input += write_job_line(first) + "\n";
  ServeJob traced = quick_job(2);
  traced.trace = true;
  input += write_job_line(traced) + "\n";
  input += "this line is not json\n";
  ServeJob delay = quick_job(3);
  delay.objective = Objective::kMinDelay;
  input += write_job_line(delay) + "\n";
  input += write_job_line(first) + "\n";  // byte-duplicate of job 1

  const std::string serial = run_serve(input, /*workers=*/1).output;
  EXPECT_EQ(serial, run_serve(input, /*workers=*/4).output);
  EXPECT_EQ(serial, run_serve(input, /*workers=*/4).output);

  // The duplicate job differs from job 1 only in its line number.
  std::vector<std::string> responses = lines_of(serial);
  ASSERT_EQ(responses.size(), 5u);
  EXPECT_EQ(strip_line_field(responses[0]), strip_line_field(responses[4]));
}

TEST(ServeStream, ShuffledJobOrderGivesSameResponsesPerJob) {
  std::vector<ServeJob> jobs;
  for (int i = 0; i < 4; ++i) {
    ServeJob job = quick_job(static_cast<std::uint64_t>(7 * i + 1));
    job.id = "j" + std::to_string(i);
    if (i == 2) job.objective = Objective::kMinArea;
    jobs.push_back(job);
  }
  auto stream_for = [&](const std::vector<std::size_t>& order) {
    std::string input;
    for (std::size_t idx : order) input += write_job_line(jobs[idx]) + "\n";
    return run_serve(input, /*workers=*/4).output;
  };

  std::vector<std::string> forward = lines_of(stream_for({0, 1, 2, 3}));
  std::vector<std::string> shuffled = lines_of(stream_for({2, 0, 3, 1}));
  ASSERT_EQ(forward.size(), 4u);
  ASSERT_EQ(shuffled.size(), 4u);
  // Same job -> same response bytes, regardless of stream position
  // (modulo the echoed line number).
  EXPECT_EQ(strip_line_field(forward[2]), strip_line_field(shuffled[0]));
  EXPECT_EQ(strip_line_field(forward[0]), strip_line_field(shuffled[1]));
  EXPECT_EQ(strip_line_field(forward[3]), strip_line_field(shuffled[2]));
  EXPECT_EQ(strip_line_field(forward[1]), strip_line_field(shuffled[3]));
}

TEST(ServeErrors, MalformedLinesAreTypedAndDontKillTheStream) {
  std::string input;
  input += write_job_line(quick_job(1)) + "\n";
  input += "{{{ token soup )))\n";
  input += "{\"circuit\":\"bench:ex1\",\"mystery\":true}\n";
  input += "{\"circuit\":\"bench:no-such-benchmark\"}\n";
  input += write_job_line(quick_job(2)) + "\n";

  ServeRun run = run_serve(input, /*workers=*/2);
  std::vector<std::string> responses = lines_of(run.output);
  ASSERT_EQ(responses.size(), 5u);
  EXPECT_EQ(run.summary.done, 2);
  EXPECT_EQ(run.summary.rejected, 3);
  EXPECT_EQ(run.summary.failed, 0);

  JsonValue soup = parse_json(responses[1]);
  EXPECT_EQ(get(soup, "status")->string, "rejected");
  EXPECT_EQ(get(soup, "error")->string, "parse");
  EXPECT_EQ(get(soup, "exit_code")->number, 2.0);
  EXPECT_EQ(get(soup, "ok")->boolean, false);
  EXPECT_EQ(get(soup, "id")->string, "job-2");  // parse failed: default id

  JsonValue unknown_key = parse_json(responses[2]);
  EXPECT_EQ(get(unknown_key, "error")->string, "parse");
  JsonValue bad_bench = parse_json(responses[3]);
  EXPECT_EQ(get(bad_bench, "status")->string, "rejected");
  EXPECT_EQ(get(bad_bench, "error")->string, "input");  // parsed, bad spec

  // The siblings completed normally.
  EXPECT_EQ(get(parse_json(responses[0]), "status")->string, "done");
  EXPECT_EQ(get(parse_json(responses[4]), "status")->string, "done");
}

TEST(ServeErrors, ExpiredDeadlineIsTypedAndAdmissionOnly) {
  // workers=1 runs jobs in input order, so by the time the second job is
  // admitted the first (a real flow run) has consumed its microscopic
  // deadline. The first job has none and must be unaffected.
  ServeJob expired = quick_job(2);
  expired.id = "too-late";
  expired.deadline_ms = 0.0001;
  std::string input = write_job_line(quick_job(1)) + "\n" +
                      write_job_line(expired) + "\n" +
                      write_job_line(quick_job(3)) + "\n";

  ServeRun run = run_serve(input, /*workers=*/1);
  std::vector<std::string> responses = lines_of(run.output);
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_EQ(run.summary.done, 2);
  EXPECT_EQ(run.summary.deadline_expired, 1);

  JsonValue doc = parse_json(responses[1]);
  EXPECT_EQ(get(doc, "status")->string, "deadline");
  EXPECT_EQ(get(doc, "error")->string, "deadline");
  EXPECT_EQ(get(doc, "exit_code")->number, 1.0);
  EXPECT_EQ(get(doc, "ok")->boolean, false);
  EXPECT_EQ(get(doc, "id")->string, "too-late");
  EXPECT_EQ(doc.find("report"), nullptr);  // never ran
  // The stream survived: both siblings ran to done.
  EXPECT_EQ(get(parse_json(responses[0]), "status")->string, "done");
  EXPECT_EQ(get(parse_json(responses[2]), "status")->string, "done");
}

TEST(ServeErrors, FaultInjectedJobLeavesSiblingsByteIdentical) {
  ServeJob faulty = quick_job(2);
  faulty.fault = "fds.schedule:1:check";
  const std::string with_fault = write_job_line(quick_job(1)) + "\n" +
                                 write_job_line(faulty) + "\n" +
                                 write_job_line(quick_job(3)) + "\n";
  // Same stream with the faulty job replaced by a blank line, so the
  // sibling line numbers are identical.
  const std::string without = write_job_line(quick_job(1)) + "\n\n" +
                              write_job_line(quick_job(3)) + "\n";

  std::vector<std::string> faulted =
      lines_of(run_serve(with_fault, /*workers=*/2).output);
  std::vector<std::string> clean =
      lines_of(run_serve(without, /*workers=*/2).output);
  ASSERT_EQ(faulted.size(), 3u);
  ASSERT_EQ(clean.size(), 2u);
  EXPECT_EQ(faulted[0], clean[0]);
  EXPECT_EQ(faulted[2], clean[1]);

  // The faulted job itself got a typed response (the flow either
  // recovered from the injected failure or reported it cleanly).
  JsonValue doc = parse_json(faulted[1]);
  EXPECT_EQ(get(doc, "status")->string, "done");
}

TEST(ServeTrace, PerJobTraceIsolationAtAnyWorkerCount) {
  ServeJob a = quick_job(1);
  a.trace = true;
  ServeJob b = quick_job(2);
  b.objective = Objective::kMinArea;
  b.trace = true;

  // Concurrently as siblings...
  const std::string both = write_job_line(a) + "\n" + write_job_line(b) +
                           "\n";
  std::vector<std::string> together =
      lines_of(run_serve(both, /*workers=*/2).output);
  ASSERT_EQ(together.size(), 2u);
  // ...and each alone (blank padding keeps b on line 2).
  std::vector<std::string> solo_a =
      lines_of(run_serve(write_job_line(a) + "\n", /*workers=*/1).output);
  std::vector<std::string> solo_b = lines_of(
      run_serve("\n" + write_job_line(b) + "\n", /*workers=*/1).output);
  ASSERT_EQ(solo_a.size(), 1u);
  ASSERT_EQ(solo_b.size(), 1u);

  // A traced job's report (stage tree, counters, values) is identical
  // whether it ran alone or next to another traced job: nothing leaked
  // between the two collectors.
  EXPECT_EQ(together[0], solo_a[0]);
  EXPECT_EQ(together[1], solo_b[0]);

  // And the traced sections are really there.
  const JsonValue doc = parse_json(together[0]);
  const JsonValue* report = get(doc, "report");
  const JsonValue* counters = report->find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_GT(counters->items.size(), 0u);
  // No serve.cache.* counter may ride in response bytes — hit/miss fate
  // depends on sibling interleaving.
  for (const JsonValue& row : counters->items) {
    const JsonValue* site = row.find("site");
    ASSERT_NE(site, nullptr);
    EXPECT_EQ(site->string.rfind("serve.", 0), std::string::npos)
        << site->string;
  }
}

TEST(ServeCache, CountsAreDeterministicAndSharedAcrossJobs) {
  std::string input;
  for (int i = 0; i < 4; ++i)
    input += write_job_line(quick_job(static_cast<std::uint64_t>(i))) + "\n";

  ServeCaches serial_caches;
  run_serve(input, /*workers=*/1, &serial_caches);
  ServeCaches::Stats serial = serial_caches.stats();
  // One distinct circuit and one distinct arch across 4 jobs.
  EXPECT_EQ(serial.design_misses, 1);
  EXPECT_EQ(serial.design_hits, 3);
  EXPECT_EQ(serial.arch_misses, 1);
  EXPECT_EQ(serial.arch_hits, 3);
  // All jobs land on the same grid, so the RR prototype builds once.
  EXPECT_GE(serial.rr_misses, 1);
  EXPECT_GE(serial.rr_hits, 1);
  EXPECT_GE(serial.rr_hits + serial.rr_misses, 4);

  // Misses count distinct keys (builds happen under the cache lock), so
  // the whole stats block is worker-count invariant.
  ServeCaches parallel_caches;
  run_serve(input, /*workers=*/4, &parallel_caches);
  ServeCaches::Stats parallel = parallel_caches.stats();
  EXPECT_EQ(parallel.design_misses, serial.design_misses);
  EXPECT_EQ(parallel.design_hits, serial.design_hits);
  EXPECT_EQ(parallel.arch_misses, serial.arch_misses);
  EXPECT_EQ(parallel.arch_hits, serial.arch_hits);
  EXPECT_EQ(parallel.rr_misses, serial.rr_misses);
  EXPECT_EQ(parallel.rr_hits, serial.rr_hits);
}

TEST(ServeExit, PerJobExitCodesFollowTheCliTaxonomy) {
  // 0 feasible / 1 clean infeasible / 2 input error; all three in one
  // stream, none killing the others.
  ServeJob infeasible = quick_job(2);
  infeasible.objective = Objective::kMeetBoth;
  infeasible.area = 1;       // one LE can't hold ex1
  infeasible.delay = 0.001;  // nor can it run in a picosecond
  std::string input = write_job_line(quick_job(1)) + "\n" +
                      write_job_line(infeasible) + "\n" +
                      "{\"circuit\":\"bench:ex1\",\"level\":\"two\"}\n";

  ServeRun run = run_serve(input, /*workers=*/2);
  std::vector<std::string> responses = lines_of(run.output);
  ASSERT_EQ(responses.size(), 3u);

  JsonValue ok = parse_json(responses[0]);
  EXPECT_EQ(get(ok, "exit_code")->number, 0.0);
  EXPECT_EQ(get(ok, "ok")->boolean, true);
  EXPECT_EQ(get(ok, "error")->string, "none");

  JsonValue infeasible_doc = parse_json(responses[1]);
  EXPECT_EQ(get(infeasible_doc, "status")->string, "done");
  EXPECT_EQ(get(infeasible_doc, "exit_code")->number, 1.0);
  EXPECT_EQ(get(infeasible_doc, "ok")->boolean, false);
  EXPECT_NE(get(infeasible_doc, "error")->string, "none");

  JsonValue bad = parse_json(responses[2]);
  EXPECT_EQ(get(bad, "exit_code")->number, 2.0);
  EXPECT_EQ(get(bad, "status")->string, "rejected");
}

TEST(ServeResponse, HostileJobIdsStayOnOneEscapedLine) {
  ServeJob job;
  job.circuit = "bench:ex1";
  job.level = 2;
  job.seed = 1;
  job.id = "we\"ird\nid\twith\\junk";
  ServeRun run = run_serve(write_job_line(job) + "\n", /*workers=*/1);
  std::vector<std::string> responses = lines_of(run.output);
  ASSERT_EQ(responses.size(), 1u);  // newline in the id didn't split it
  JsonValue doc = parse_json(responses[0]);
  EXPECT_EQ(get(doc, "id")->string, job.id);
}

}  // namespace
}  // namespace nanomap
