// Functional correctness of the word-level RTL operators: every expander
// is simulated against integer arithmetic.
#include <gtest/gtest.h>

#include "netlist/simulate.h"
#include "rtl/module_expander.h"
#include "util/rng.h"

namespace nanomap {
namespace {

struct TwoInputFixture {
  Design d;
  SignalBus a, b;
  TwoInputFixture(int width) {
    a = add_input_bus(d, "a", width, 0);
    b = add_input_bus(d, "b", width, 0);
  }
  void finish() {
    d.net.compute_levels();
    d.net.validate();
    d.refresh_module_stats();
  }
};

TEST(MakeTruth, BitOrdering) {
  // fanin 0 is the least-significant minterm bit.
  std::uint64_t tt = make_truth(2, [](const bool* v) { return v[0] && !v[1]; });
  EXPECT_EQ(tt, 0x2u);  // only minterm 1 (v0=1, v1=0)
}

TEST(Adder, MatchesIntegerAddExhaustive4Bit) {
  TwoInputFixture f(4);
  ExpandedModule m = expand_adder(f.d, "add", f.a, f.b, 0);
  f.finish();
  Simulator sim(f.d.net);
  for (int x = 0; x < 16; ++x) {
    for (int y = 0; y < 16; ++y) {
      sim.set_input_bus(f.a, static_cast<std::uint64_t>(x));
      sim.set_input_bus(f.b, static_cast<std::uint64_t>(y));
      sim.evaluate();
      EXPECT_EQ(sim.read_bus(m.out), static_cast<std::uint64_t>((x + y) & 15));
      EXPECT_EQ(sim.value(m.carry_out), (x + y) > 15);
    }
  }
}

TEST(Adder, PaperCountsFor4Bit) {
  // Paper §3: a 4-bit ripple-carry adder is 8 LUTs with logic depth 4.
  TwoInputFixture f(4);
  expand_adder(f.d, "add", f.a, f.b, 0);
  f.finish();
  EXPECT_EQ(f.d.module(0).num_luts, 8);
  EXPECT_EQ(f.d.module(0).depth, 4);
}

TEST(Subtractor, MatchesIntegerSubExhaustive4Bit) {
  TwoInputFixture f(4);
  ExpandedModule m = expand_subtractor(f.d, "sub", f.a, f.b, 0);
  f.finish();
  Simulator sim(f.d.net);
  for (int x = 0; x < 16; ++x) {
    for (int y = 0; y < 16; ++y) {
      sim.set_input_bus(f.a, static_cast<std::uint64_t>(x));
      sim.set_input_bus(f.b, static_cast<std::uint64_t>(y));
      sim.evaluate();
      EXPECT_EQ(sim.read_bus(m.out),
                static_cast<std::uint64_t>((x - y) & 15));
      EXPECT_EQ(sim.value(m.carry_out), x < y);  // borrow out
    }
  }
}

TEST(Multiplier, LowHalfExhaustive4Bit) {
  TwoInputFixture f(4);
  ExpandedModule m = expand_multiplier(f.d, "mul", f.a, f.b, 0);
  f.finish();
  ASSERT_EQ(m.out.size(), 4u);
  Simulator sim(f.d.net);
  for (int x = 0; x < 16; ++x) {
    for (int y = 0; y < 16; ++y) {
      sim.set_input_bus(f.a, static_cast<std::uint64_t>(x));
      sim.set_input_bus(f.b, static_cast<std::uint64_t>(y));
      sim.evaluate();
      EXPECT_EQ(sim.read_bus(m.out), static_cast<std::uint64_t>((x * y) & 15))
          << x << "*" << y;
    }
  }
}

TEST(Multiplier, FullWidthExhaustive4Bit) {
  TwoInputFixture f(4);
  ExpandedModule m = expand_multiplier(f.d, "mul", f.a, f.b, 0, true);
  f.finish();
  ASSERT_EQ(m.out.size(), 8u);
  Simulator sim(f.d.net);
  for (int x = 0; x < 16; ++x) {
    for (int y = 0; y < 16; ++y) {
      sim.set_input_bus(f.a, static_cast<std::uint64_t>(x));
      sim.set_input_bus(f.b, static_cast<std::uint64_t>(y));
      sim.evaluate();
      EXPECT_EQ(sim.read_bus(m.out), static_cast<std::uint64_t>(x * y))
          << x << "*" << y;
    }
  }
}

class MultiplierWidths : public ::testing::TestWithParam<int> {};

TEST_P(MultiplierWidths, RandomVectorsFullWidth) {
  const int width = GetParam();
  TwoInputFixture f(width);
  ExpandedModule m = expand_multiplier(f.d, "mul", f.a, f.b, 0, true);
  f.finish();
  Simulator sim(f.d.net);
  Rng rng(static_cast<std::uint64_t>(width));
  const std::uint64_t mask = (width >= 64) ? ~0ull
                                           : ((1ull << width) - 1);
  for (int i = 0; i < 60; ++i) {
    std::uint64_t x = rng.next_u64() & mask;
    std::uint64_t y = rng.next_u64() & mask;
    sim.set_input_bus(f.a, x);
    sim.set_input_bus(f.b, y);
    sim.evaluate();
    EXPECT_EQ(sim.read_bus(m.out), x * y) << x << "*" << y;
  }
}

TEST_P(MultiplierWidths, ParallelDepthScalesLinearly) {
  const int width = GetParam();
  TwoInputFixture f(width);
  expand_multiplier(f.d, "mul", f.a, f.b, 0, true);
  f.finish();
  // Carry-save rows + prefix CPA: depth ~ n + log n + O(1), LUTs ~ 2n^2.
  EXPECT_LE(f.d.module(0).depth, width + 10);
  EXPECT_GE(f.d.module(0).depth, width - 1);
  EXPECT_GE(f.d.module(0).num_luts, 2 * width * width - 4 * width);
}

INSTANTIATE_TEST_SUITE_P(Widths, MultiplierWidths,
                         ::testing::Values(2, 3, 5, 8, 12, 16));

TEST(Comparator, ExhaustiveLtEq4Bit) {
  TwoInputFixture f(4);
  ExpandedModule m = expand_comparator(f.d, "cmp", f.a, f.b, 0);
  f.finish();
  Simulator sim(f.d.net);
  for (int x = 0; x < 16; ++x) {
    for (int y = 0; y < 16; ++y) {
      sim.set_input_bus(f.a, static_cast<std::uint64_t>(x));
      sim.set_input_bus(f.b, static_cast<std::uint64_t>(y));
      sim.evaluate();
      EXPECT_EQ(sim.value(m.out[0]), x < y) << x << " " << y;
      EXPECT_EQ(sim.value(m.out[1]), x == y) << x << " " << y;
    }
  }
}

TEST(Mux, SelectsOperand) {
  Design d;
  int sel = d.net.add_input("sel", 0);
  SignalBus a = add_input_bus(d, "a", 6, 0);
  SignalBus b = add_input_bus(d, "b", 6, 0);
  ExpandedModule m = expand_mux2(d, "mux", sel, a, b, 0);
  d.net.compute_levels();
  Simulator sim(d.net);
  sim.set_input_bus(a, 0x2a);
  sim.set_input_bus(b, 0x15);
  sim.set_input(sel, false);
  sim.evaluate();
  EXPECT_EQ(sim.read_bus(m.out), 0x2au);
  sim.set_input(sel, true);
  sim.evaluate();
  EXPECT_EQ(sim.read_bus(m.out), 0x15u);
}

TEST(Alu, AllFourFunctions) {
  Design d;
  SignalBus sel = add_input_bus(d, "sel", 2, 0);
  SignalBus a = add_input_bus(d, "a", 6, 0);
  SignalBus b = add_input_bus(d, "b", 6, 0);
  ExpandedModule m = expand_alu(d, "alu", sel, a, b, 0);
  d.net.compute_levels();
  Simulator sim(d.net);
  Rng rng(3);
  for (int i = 0; i < 40; ++i) {
    std::uint64_t x = rng.next_below(64);
    std::uint64_t y = rng.next_below(64);
    for (int op = 0; op < 4; ++op) {
      sim.set_input_bus(sel, static_cast<std::uint64_t>(op));
      sim.set_input_bus(a, x);
      sim.set_input_bus(b, y);
      sim.evaluate();
      std::uint64_t expect = 0;
      switch (op) {
        case 0: expect = (x + y) & 63; break;
        case 1: expect = (x - y) & 63; break;
        case 2: expect = x & y; break;
        case 3: expect = x ^ y; break;
      }
      EXPECT_EQ(sim.read_bus(m.out), expect)
          << "op " << op << ": " << x << "," << y;
    }
  }
}

TEST(RegisterBank, DriveAndWidthMismatch) {
  Design d;
  SignalBus in = add_input_bus(d, "in", 4, 0);
  SignalBus regs = add_register_bank(d, "r", 4, 0);
  drive_register_bank(d, regs, in);
  SignalBus narrow = add_register_bank(d, "n", 2, 0);
  EXPECT_THROW(drive_register_bank(d, narrow, in), CheckError);
}

TEST(ModuleStats, TaggedAndCounted) {
  TwoInputFixture f(4);
  expand_adder(f.d, "add", f.a, f.b, 0);
  expand_multiplier(f.d, "mul", f.a, f.b, 0);
  f.finish();
  ASSERT_EQ(f.d.modules.size(), 2u);
  EXPECT_EQ(f.d.module(0).type, ModuleType::kAdder);
  EXPECT_EQ(f.d.module(1).type, ModuleType::kMultiplier);
  int tagged = 0;
  for (const LutNode& n : f.d.net.nodes())
    if (n.kind == NodeKind::kLut && n.module_id >= 0) ++tagged;
  EXPECT_EQ(tagged, f.d.module(0).num_luts + f.d.module(1).num_luts);
}

}  // namespace
}  // namespace nanomap
