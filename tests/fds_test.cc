#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "circuits/benchmarks.h"
#include "circuits/random_dag.h"
#include "core/fds.h"
#include "core/fds_reference.h"
#include "netlist/plane.h"
#include "rtl/module_expander.h"
#include "util/thread_pool.h"

namespace nanomap {
namespace {

PlaneScheduleGraph graph_for(const Design& d, int plane, int level) {
  CircuitParams p = extract_circuit_params(d.net);
  return build_schedule_graph(d, plane, make_folding_config(p, level));
}

void expect_schedule_legal(const PlaneScheduleGraph& g,
                           const FdsResult& r) {
  ASSERT_TRUE(r.feasible);
  for (const ScheduleNode& n : g.nodes) {
    int sn = r.stage_of[static_cast<std::size_t>(n.id)];
    EXPECT_GE(sn, 1);
    EXPECT_LE(sn, g.num_stages);
    for (int s : n.succs) {
      EXPECT_GE(r.stage_of[static_cast<std::size_t>(s)],
                sn + schedule_gap(g, n.id, s))
          << n.debug_name;
    }
  }
  // The fully pinned schedule must also be frame-feasible (this checks the
  // within-stage level budget end to end).
  TimeFrames tf = compute_time_frames(g, r.stage_of);
  EXPECT_TRUE(tf.feasible);
}

TEST(Fds, PaperStyleDiamondDGs) {
  // A diamond: L1 -> {L2, L3} -> L4 over 3 folding cycles at level 1.
  Design d;
  int a = d.net.add_input("a", 0);
  int b = d.net.add_input("b", 0);
  int l1 = d.net.add_lut("L1", {a, b}, 0x6, 0);
  int l2 = d.net.add_lut("L2", {l1, a}, 0x6, 0);
  int l3 = d.net.add_lut("L3", {l1, b}, 0x6, 0);
  int l4 = d.net.add_lut("L4", {l2, l3}, 0x6, 0);
  d.net.add_output("o", l4);
  d.net.compute_levels();

  PlaneScheduleGraph g = graph_for(d, 0, 1);
  ASSERT_EQ(g.num_stages, 3);
  std::vector<int> unpinned(g.nodes.size(), 0);
  TimeFrames tf = compute_time_frames(g, unpinned);
  std::vector<StorageOp> ops = build_storage_ops(g);
  DistributionGraphs dgs = compute_dgs(g, ops, unpinned, tf);

  // Frames: L1 -> [1,1], L2/L3 -> [2,2], L4 -> [3,3] (chain is tight), so
  // the LUT DG is exactly 1,2,1.
  EXPECT_DOUBLE_EQ(dgs.lut[1], 1.0);
  EXPECT_DOUBLE_EQ(dgs.lut[2], 2.0);
  EXPECT_DOUBLE_EQ(dgs.lut[3], 1.0);
}

TEST(Fds, SlackNodeSpreadsProbability) {
  // L1 -> L2 -> L3 chain plus independent L5 (frame [1,3] at level 1).
  Design d;
  int a = d.net.add_input("a", 0);
  int b = d.net.add_input("b", 0);
  int l1 = d.net.add_lut("L1", {a, b}, 0x6, 0);
  int l2 = d.net.add_lut("L2", {l1, a}, 0x6, 0);
  int l3 = d.net.add_lut("L3", {l2, b}, 0x6, 0);
  int l5 = d.net.add_lut("L5", {a, b}, 0x8, 0);
  d.net.add_output("o", l3);
  d.net.add_output("p", l5);
  d.net.compute_levels();

  PlaneScheduleGraph g = graph_for(d, 0, 1);
  std::vector<int> unpinned(g.nodes.size(), 0);
  TimeFrames tf = compute_time_frames(g, unpinned);
  int l5_node = g.node_of_lut[static_cast<std::size_t>(l5)];
  EXPECT_EQ(tf.asap[static_cast<std::size_t>(l5_node)], 1);
  EXPECT_EQ(tf.alap[static_cast<std::size_t>(l5_node)], 3);

  std::vector<StorageOp> ops = build_storage_ops(g);
  DistributionGraphs dgs = compute_dgs(g, ops, unpinned, tf);
  // Chain contributes 1.0 to each cycle; L5 contributes 1/3 to each.
  for (int j = 1; j <= 3; ++j)
    EXPECT_NEAR(dgs.lut[static_cast<std::size_t>(j)], 1.0 + 1.0 / 3.0, 1e-9);
}

TEST(Fds, StorageLifetimeArithmeticEq6to8) {
  // Source pinned by chain to stage 1; two consumers, one tight at stage 2,
  // one floating to stage 3: check the Eq. 6-8 derived distribution.
  Design d;
  int a = d.net.add_input("a", 0);
  int b = d.net.add_input("b", 0);
  int src = d.net.add_lut("S", {a, b}, 0x6, 0);
  int c1 = d.net.add_lut("C1", {src, a}, 0x6, 0);
  int c2 = d.net.add_lut("C2", {c1, b}, 0x6, 0);   // forces 3 stages
  int c3 = d.net.add_lut("C3", {src, b}, 0x6, 0);  // floating consumer
  d.net.add_output("o", c2);
  d.net.add_output("p", c3);
  d.net.compute_levels();

  PlaneScheduleGraph g = graph_for(d, 0, 1);
  ASSERT_EQ(g.num_stages, 3);
  std::vector<StorageOp> ops = build_storage_ops(g);
  // Find the storage op produced by node S.
  int s_node = g.node_of_lut[static_cast<std::size_t>(src)];
  const StorageOp* op = nullptr;
  for (const StorageOp& o : ops)
    if (o.producer == s_node) op = &o;
  ASSERT_NE(op, nullptr);
  EXPECT_EQ(op->consumers.size(), 2u);
  EXPECT_EQ(op->weight, 1);
  (void)c3;
}

TEST(Fds, TallyCountsPlaneRegistersEveryStage) {
  Design d;
  SignalBus in = add_input_bus(d, "in", 4, 0);
  SignalBus r = add_register_bank(d, "r", 4, 0);
  drive_register_bank(d, r, in);
  ExpandedModule add = expand_adder(d, "s", r, r, 0);
  int l1 = d.net.add_lut("l1", {add.out[3], add.out[0]}, 0x6, 0);
  d.net.add_output("o", l1);
  d.net.compute_levels();
  d.refresh_module_stats();

  PlaneScheduleGraph g = graph_for(d, 0, 2);
  FdsResult r2 = schedule_plane(g, ArchParams::paper_instance());
  expect_schedule_legal(g, r2);
  for (std::size_t j = 1; j < r2.ff_count.size(); ++j)
    EXPECT_GE(r2.ff_count[j], 4);  // the 4 plane registers stay live
}

TEST(Fds, OccupancyConventionNoStorageForSameStageUse) {
  // Two LUTs chained within one 2-level stage: no flip-flop needed.
  Design d;
  int a = d.net.add_input("a", 0);
  int b = d.net.add_input("b", 0);
  int l1 = d.net.add_lut("l1", {a, b}, 0x6, 0);
  int l2 = d.net.add_lut("l2", {l1, a}, 0x6, 0);
  d.net.add_output("o", l2);
  d.net.compute_levels();

  PlaneScheduleGraph g = graph_for(d, 0, 2);  // single stage of 2 levels
  ASSERT_EQ(g.num_stages, 1);
  FdsResult r = schedule_plane(g, ArchParams::paper_instance());
  // l2 feeds the primary output in the last stage -> no cross-stage
  // storage; l1's value is consumed combinationally.
  EXPECT_EQ(r.ff_count[1], 0);
}

TEST(Fds, LutCountsPreserved) {
  Design d = make_ex1(8);
  CircuitParams p = extract_circuit_params(d.net);
  for (int level : {1, 2, 4}) {
    PlaneScheduleGraph g = graph_for(d, 0, level);
    FdsResult r = schedule_plane(g, ArchParams::paper_instance_unbounded_k());
    expect_schedule_legal(g, r);
    int total = 0;
    for (std::size_t j = 1; j < r.lut_count.size(); ++j)
      total += r.lut_count[j];
    EXPECT_EQ(total, p.num_lut[0]) << "level " << level;
  }
}

TEST(Fds, BalancesAtLeastAsWellAsAsapOnBenchmarks) {
  for (const char* name : {"ex1", "FIR"}) {
    Design d = make_benchmark(name);
    PlaneScheduleGraph g = graph_for(d, 0, 1);
    FdsOptions fds_on, fds_off;
    fds_off.scheduler = SchedulerKind::kAsap;
    fds_off.refine = false;
    ArchParams arch = ArchParams::paper_instance_unbounded_k();
    FdsResult with_fds = schedule_plane(g, arch, fds_on);
    FdsResult asap = schedule_plane(g, arch, fds_off);
    expect_schedule_legal(g, with_fds);
    expect_schedule_legal(g, asap);
    EXPECT_LE(with_fds.max_le, asap.max_le) << name;
  }
}

TEST(Fds, ListSchedulerLegalAndCompetitive) {
  for (const char* name : {"ex1", "c5315"}) {
    Design d = make_benchmark(name);
    PlaneScheduleGraph g = graph_for(d, 0, 1);
    ArchParams arch = ArchParams::paper_instance_unbounded_k();
    FdsOptions list_opts, asap_opts;
    list_opts.scheduler = SchedulerKind::kList;
    list_opts.refine = false;
    asap_opts.scheduler = SchedulerKind::kAsap;
    asap_opts.refine = false;
    FdsResult list = schedule_plane(g, arch, list_opts);
    FdsResult asap = schedule_plane(g, arch, asap_opts);
    expect_schedule_legal(g, list);
    // List scheduling never does meaningfully worse than ASAP on peak.
    EXPECT_LE(list.max_le, asap.max_le * 11 / 10) << name;
  }
}

class FdsRandomLegality : public ::testing::TestWithParam<int> {};

TEST_P(FdsRandomLegality, RandomDagsScheduleLegally) {
  RandomDagSpec spec;
  spec.luts_per_plane = 60 + GetParam() * 13;
  spec.depth = 8;
  spec.seed = static_cast<std::uint64_t>(GetParam()) * 1337 + 5;
  Design d = make_random_design(spec);
  for (int level : {1, 2, 3}) {
    PlaneScheduleGraph g = graph_for(d, 0, level);
    ASSERT_TRUE(g.feasible);
    FdsResult r = schedule_plane(g, ArchParams::paper_instance_unbounded_k());
    expect_schedule_legal(g, r);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FdsRandomLegality, ::testing::Range(0, 8));

TEST(Fds, DeterministicAcrossRuns) {
  Design d = make_ex1(8);
  PlaneScheduleGraph g = graph_for(d, 0, 2);
  ArchParams arch = ArchParams::paper_instance();
  FdsResult r1 = schedule_plane(g, arch);
  FdsResult r2 = schedule_plane(g, arch);
  EXPECT_EQ(r1.stage_of, r2.stage_of);
  EXPECT_EQ(r1.max_le, r2.max_le);
}

TEST(Fds, ExactTiesResolveToLowestNodeId) {
  // A tight L1 -> L2 chain (2 stages at level 1) plus two identical
  // independent LUTs A and B with frames [1,2]. In the opening iterations
  // the candidates L1@1, L2@2, A@2 and B@2 all have a total force of
  // *exactly* 0.0 (the A@1/B@1 candidates cost extra storage because both
  // outputs are anchored to the last stage), so the documented tie-break
  // decides the pin order: lowest force, then lowest node id, then lowest
  // stage. A is therefore pinned to stage 2 before B gets a turn, after
  // which B strictly prefers the now-emptier stage 1. If ties broke
  // toward the higher node id instead, the assignment would come out
  // mirrored — so the final schedule pins the order exactly.
  Design d;
  int a = d.net.add_input("a", 0);
  int b = d.net.add_input("b", 0);
  int l1 = d.net.add_lut("L1", {a, b}, 0x6, 0);
  int l2 = d.net.add_lut("L2", {l1, a}, 0x6, 0);
  int la = d.net.add_lut("A", {a, b}, 0x8, 0);
  int lb = d.net.add_lut("B", {a, b}, 0xe, 0);
  d.net.add_output("o", l2);
  d.net.add_output("p", la);
  d.net.add_output("q", lb);
  d.net.compute_levels();

  PlaneScheduleGraph g = graph_for(d, 0, 1);
  ASSERT_EQ(g.num_stages, 2);
  int na = g.node_of_lut[static_cast<std::size_t>(la)];
  int nb = g.node_of_lut[static_cast<std::size_t>(lb)];
  ASSERT_NE(na, nb);
  int lo = std::min(na, nb);
  int hi = std::max(na, nb);

  ArchParams arch = ArchParams::paper_instance_unbounded_k();
  FdsResult r = schedule_plane(g, arch);
  expect_schedule_legal(g, r);
  EXPECT_EQ(r.stage_of[static_cast<std::size_t>(lo)], 2)
      << "the zero-force tie must break to the lowest node id";
  EXPECT_EQ(r.stage_of[static_cast<std::size_t>(hi)], 1);

  // And the retained from-scratch scheduler agrees candidate for
  // candidate.
  FdsResult ref = schedule_plane_reference(g, arch);
  EXPECT_EQ(r.stage_of, ref.stage_of);
}

TEST(Fds, DifferentialSweepMatchesReferenceScheduler) {
  // The incremental kernel (and the RefineTally-based refine used by every
  // scheduler kind) must reproduce the retained from-scratch reference
  // *exactly* — same pins, same refine moves — across random DAGs,
  // folding levels (0 = no folding), and scheduler kinds.
  ArchParams arch = ArchParams::paper_instance_unbounded_k();
  for (int seed = 0; seed < 6; ++seed) {
    RandomDagSpec spec;
    spec.luts_per_plane = 50 + seed * 17;
    spec.depth = 7;
    spec.regs_per_plane = 4;
    spec.seed = static_cast<std::uint64_t>(seed) * 9176 + 11;
    Design d = make_random_design(spec);
    for (int level : {1, 2, 0}) {
      PlaneScheduleGraph g = graph_for(d, 0, level);
      ASSERT_TRUE(g.feasible);
      for (SchedulerKind kind :
           {SchedulerKind::kFds, SchedulerKind::kList, SchedulerKind::kAsap}) {
        FdsOptions opts;
        opts.scheduler = kind;
        FdsResult got = schedule_plane(g, arch, opts);
        FdsResult want = schedule_plane_reference(g, arch, opts);
        EXPECT_EQ(got.stage_of, want.stage_of)
            << "seed " << seed << " level " << level << " kind "
            << static_cast<int>(kind);
        EXPECT_EQ(got.feasible, want.feasible);
        EXPECT_EQ(got.max_le, want.max_le);
        EXPECT_EQ(got.le_count, want.le_count);
      }
    }
  }
}

TEST(Fds, ThreadPoolDoesNotChangeTheSchedule) {
  // Parallel candidate scoring must be byte-invariant: pool sizes 1 and 3
  // and no pool at all give identical schedules.
  ThreadPool pool3(3);
  ThreadPool pool1(1);
  ArchParams arch = ArchParams::paper_instance_unbounded_k();
  for (const char* name : {"ex1", "Biquad", "c5315"}) {
    Design d = make_benchmark(name);
    for (int level : {1, 2}) {
      PlaneScheduleGraph g = graph_for(d, 0, level);
      FdsResult serial = schedule_plane(g, arch, FdsOptions{}, nullptr);
      FdsResult one = schedule_plane(g, arch, FdsOptions{}, &pool1);
      FdsResult three = schedule_plane(g, arch, FdsOptions{}, &pool3);
      EXPECT_EQ(serial.stage_of, one.stage_of) << name << " level " << level;
      EXPECT_EQ(serial.stage_of, three.stage_of)
          << name << " level " << level;
    }
  }
}

TEST(Fds, EmptyPlaneHandled) {
  Design d;
  d.net.add_input("a", 0);
  // Plane 1 exists (a register) but has no LUTs.
  int ff = d.net.add_flipflop("r", 1);
  d.net.set_flipflop_input(ff, 0);
  d.net.compute_levels();
  CircuitParams p = extract_circuit_params(d.net);
  PlaneScheduleGraph g =
      build_schedule_graph(d, 1, make_folding_config(p, 1));
  FdsResult r = schedule_plane(g, ArchParams::paper_instance());
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.max_le, 1);  // the plane register still needs an LE's FF
}

}  // namespace
}  // namespace nanomap
