// Contract tests for the tracing/metrics subsystem (util/trace.h):
//
//   * counters and value histograms are exact under concurrent ThreadPool
//     recording (the totals a traced flow reports are thread-count
//     independent),
//   * the disabled path is inert and the *enabled* path never perturbs
//     results — a traced flow run stays byte-identical to the golden
//     pre-observability fingerprints at --threads 1 and 4,
//   * spans form the documented stage tree and every site a traced flow
//     run hits is listed in the known-site registries,
//   * RunReport::to_json(false) is byte-deterministic across runs and
//     thread counts.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <set>
#include <string>

#include "bitstream/bitmap.h"
#include "circuits/random_dag.h"
#include "flow/nanomap_flow.h"
#include "map/bench_format.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace nanomap {
namespace {

// Same byte fingerprint as tests/determinism_test.cc, so the golden
// hashes pinned there gate this file too.
std::string fingerprint(const FlowResult& r) {
  std::string fp;
  auto add_int = [&](long long v) {
    char buf[sizeof v];
    std::memcpy(buf, &v, sizeof v);
    fp.append(buf, sizeof v);
  };
  auto add_double = [&](double v) {
    char buf[sizeof v];
    std::memcpy(buf, &v, sizeof v);
    fp.append(buf, sizeof v);
  };
  add_int(r.placement.placement.grid.width);
  add_int(r.placement.placement.grid.height);
  for (int site : r.placement.placement.site_of_smb) add_int(site);
  add_double(r.placement.cost);
  add_double(r.placement.wirelength);
  add_int(static_cast<long long>(r.routing.nets.size()));
  for (const NetRoute& nr : r.routing.nets) {
    add_int(nr.net_index);
    for (int s : nr.sink_smbs) add_int(s);
    for (double d : nr.sink_delay_ps) add_double(d);
    for (int n : nr.wire_nodes) add_int(n);
  }
  add_int(r.routing.usage.direct);
  add_int(r.routing.usage.len1);
  add_int(r.routing.usage.len4);
  add_int(r.routing.usage.global);
  std::vector<std::uint8_t> bytes = serialize_bitmap(r.bitmap);
  fp.append(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  return fp;
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

Design s27_design() {
  return parse_bench_file(NMAP_TEST_DESIGN_DIR "/s27.bench");
}

Design random_design() {
  RandomDagSpec spec;
  spec.num_planes = 2;
  spec.luts_per_plane = 45;
  spec.depth = 6;
  spec.regs_per_plane = 6;
  spec.seed = 1234;
  return make_random_design(spec);
}

FlowResult run_with(const Design& d, int threads, bool traced) {
  FlowOptions opts;
  opts.arch = ArchParams::paper_instance();
  opts.seed = 42;
  opts.threads = threads;
  opts.placement.restarts = threads > 1 ? 4 : 1;
  opts.router.batch_size = 4;
  opts.collect_trace = traced;
  FlowResult r = run_nanomap(d, opts);
  EXPECT_TRUE(r.feasible) << r.message;
  return r;
}

TEST(Trace, DisabledByDefaultAndMacrosInert) {
  ASSERT_FALSE(Trace::enabled());
  NM_TRACE_COUNT("place.calls", 1);
  NM_TRACE_VALUE("place.cost", 3.5);
  { NM_TRACE_SPAN("flow"); }
  TraceScope scope(true);
  ASSERT_TRUE(Trace::enabled());
  TraceSnapshot snap = Trace::instance().snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.values.empty());
  EXPECT_TRUE(snap.spans.empty());
}

TEST(Trace, ScopeDisablesOnExit) {
  {
    TraceScope scope(true);
    EXPECT_TRUE(Trace::enabled());
  }
  EXPECT_FALSE(Trace::enabled());
  {
    TraceScope scope(false);
    EXPECT_FALSE(Trace::enabled());
  }
}

TEST(Trace, CountersExactUnderConcurrentRecording) {
  // 8 workers x 1000 increments per site: the mutex-protected counters
  // must land on the exact total under any interleaving, and integral
  // value sums must be exact too (that is the determinism contract for
  // sites recorded from pool workers, e.g. place.accepted_per_temp).
  TraceScope scope(true);
  ThreadPool pool(8);
  const int kTasks = 8000;
  pool_for_each(&pool, kTasks, [](int i) {
    NM_TRACE_COUNT("place.moves", 3);
    NM_TRACE_VALUE("place.accepted_per_temp", i % 7);
  });
  TraceSnapshot snap = Trace::instance().snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].site, "place.moves");
  EXPECT_EQ(snap.counters[0].value, 3L * kTasks);
  ASSERT_EQ(snap.values.size(), 1u);
  const TraceValueRow& v = snap.values[0];
  EXPECT_EQ(v.site, "place.accepted_per_temp");
  EXPECT_EQ(v.count, kTasks);
  double want_sum = 0.0;
  for (int i = 0; i < kTasks; ++i) want_sum += i % 7;
  EXPECT_EQ(v.sum, want_sum);  // integral doubles: exact, order-free
  EXPECT_EQ(v.min, 0.0);
  EXPECT_EQ(v.max, 6.0);
}

TEST(Trace, SpanTreeNestsAndAggregates) {
  TraceScope scope(true);
  {
    NM_TRACE_SPAN("flow");
    for (int i = 0; i < 3; ++i) {
      NM_TRACE_SPAN("place");
    }
  }
  TraceSnapshot snap = Trace::instance().snapshot();
  ASSERT_EQ(snap.spans.size(), 4u);
  EXPECT_EQ(snap.spans[0].name, "flow");
  EXPECT_EQ(snap.spans[0].parent, -1);
  EXPECT_EQ(snap.spans[0].depth, 0);
  for (int i = 1; i <= 3; ++i) {
    EXPECT_EQ(snap.spans[static_cast<std::size_t>(i)].name, "place");
    EXPECT_EQ(snap.spans[static_cast<std::size_t>(i)].parent, 0);
    EXPECT_EQ(snap.spans[static_cast<std::size_t>(i)].depth, 1);
  }
  std::vector<TraceSpan> agg = snap.aggregate_spans();
  ASSERT_EQ(agg.size(), 2u);
  EXPECT_EQ(agg[0].name, "flow");
  EXPECT_EQ(agg[0].calls, 1);
  EXPECT_EQ(agg[1].name, "flow/place");
  EXPECT_EQ(agg[1].calls, 3);
  EXPECT_NE(snap.render().find("trace: stage tree"), std::string::npos);
}

TEST(Trace, EnableClearsThePreviousWindow) {
  {
    TraceScope scope(true);
    NM_TRACE_COUNT("route.calls", 7);
  }
  TraceScope scope(true);
  EXPECT_TRUE(Trace::instance().snapshot().counters.empty());
}

// The tentpole guarantee: tracing never changes a result byte. Both the
// disabled path (plain runs, pinned by determinism_test.cc) and the
// *enabled* path must match the golden pre-observability fingerprints,
// with the parallel machinery engaged and at both thread counts.
TEST(Trace, TracedFlowMatchesGoldenFingerprints) {
  struct Case {
    const char* name;
    Design design;
    std::uint64_t want;
  };
  Case cases[] = {
      {"s27", s27_design(), 0x1ecc1e36737c91f0ull},
      {"random-dag", random_design(), 0x5cf9730701668e3full},
  };
  for (const Case& c : cases) {
    for (int threads : {1, 4}) {
      FlowOptions opts;
      opts.arch = ArchParams::paper_instance();
      opts.seed = 42;
      opts.threads = threads;
      opts.placement.restarts = 4;
      opts.router.batch_size = 4;
      opts.collect_trace = true;
      FlowResult r = run_nanomap(c.design, opts);
      ASSERT_TRUE(r.feasible) << r.message;
      EXPECT_EQ(fnv1a(fingerprint(r)), c.want)
          << c.name << ": tracing perturbed the result at threads="
          << threads;
      EXPECT_FALSE(r.report.stages.empty());
      EXPECT_FALSE(r.report.counters.empty());
    }
  }
}

TEST(Trace, EverySiteATracedRunHitsIsRegistered) {
  FlowResult r = run_with(s27_design(), 4, true);
  const auto& counters = Trace::known_counter_sites();
  const auto& values = Trace::known_value_sites();
  const auto& spans = Trace::known_span_names();
  std::set<std::string> counter_reg(counters.begin(), counters.end());
  std::set<std::string> value_reg(values.begin(), values.end());
  std::set<std::string> span_reg(spans.begin(), spans.end());
  for (const TraceCounterRow& c : r.report.counters)
    EXPECT_TRUE(counter_reg.count(c.site))
        << "unregistered counter site " << c.site
        << " (add it to Trace::known_counter_sites and "
           "docs/OBSERVABILITY.md)";
  for (const TraceValueRow& v : r.report.values)
    EXPECT_TRUE(value_reg.count(v.site))
        << "unregistered value site " << v.site;
  for (const TraceSpan& s : r.report.stages) {
    std::string leaf = s.name;
    std::size_t slash = leaf.rfind('/');
    if (slash != std::string::npos) leaf = leaf.substr(slash + 1);
    EXPECT_TRUE(span_reg.count(leaf))
        << "unregistered span name " << leaf << " (path " << s.name << ")";
  }
}

TEST(Trace, CounterTotalsThreadCountInvariant) {
  // The same (input, seed, restarts, batch) must produce the same counter
  // totals and value summaries at any thread count — wall times are the
  // only fields allowed to differ.
  FlowOptions opts;
  opts.arch = ArchParams::paper_instance();
  opts.seed = 42;
  opts.placement.restarts = 4;
  opts.router.batch_size = 4;
  opts.collect_trace = true;
  opts.threads = 1;
  FlowResult a = run_nanomap(s27_design(), opts);
  opts.threads = 4;
  FlowResult b = run_nanomap(s27_design(), opts);
  ASSERT_TRUE(a.feasible && b.feasible);
  // run.threads is the one field that legitimately differs (it records
  // the requested thread count); everything else must match byte-wise.
  RunReport normalized = b.report;
  normalized.threads = a.report.threads;
  EXPECT_EQ(a.report.to_json(/*include_timings=*/false),
            normalized.to_json(/*include_timings=*/false));
}

TEST(Trace, ReportJsonRepeatable) {
  FlowResult a = run_with(random_design(), 4, true);
  FlowResult b = run_with(random_design(), 4, true);
  EXPECT_EQ(a.report.to_json(false), b.report.to_json(false));
}

TEST(Trace, UntracedRunsCarryAnEmptyButValidReport) {
  FlowResult r = run_with(s27_design(), 1, false);
  EXPECT_FALSE(r.report.trace_enabled);
  EXPECT_TRUE(r.report.stages.empty());
  EXPECT_TRUE(r.report.counters.empty());
  EXPECT_TRUE(r.report.values.empty());
  EXPECT_EQ(r.report.version, RunReport::kSchemaVersion);
  EXPECT_TRUE(r.report.feasible);
  EXPECT_GT(r.report.num_les, 0);
  EXPECT_FALSE(r.report.to_json().empty());
}

}  // namespace
}  // namespace nanomap
