// Robustness: the front ends must reject arbitrary garbage with a clean
// InputError (never crash, never CheckError, never accept structurally
// broken netlists that fail validation later).
#include <gtest/gtest.h>

#include "arch/defect.h"
#include "map/bench_format.h"
#include "rtl/blif.h"
#include "rtl/parser.h"
#include "rtl/verilog.h"
#include "rtl/vhdl.h"
#include "serve/job.h"
#include "util/rng.h"

namespace nanomap {
namespace {

// Token soup built from each grammar's own vocabulary — much better at
// reaching deep parser states than pure random bytes.
std::string token_soup(Rng* rng, const std::vector<std::string>& vocab,
                       int tokens) {
  std::string out;
  for (int i = 0; i < tokens; ++i) {
    out += vocab[static_cast<std::size_t>(rng->next_below(vocab.size()))];
    out += rng->next_bool(0.2) ? "\n" : " ";
  }
  return out;
}

template <typename ParseFn>
void expect_no_crash(ParseFn parse, const std::vector<std::string>& vocab,
                     std::uint64_t seed, int iterations) {
  Rng rng(seed);
  for (int i = 0; i < iterations; ++i) {
    std::string text = token_soup(&rng, vocab, rng.next_int(3, 40));
    try {
      parse(text);  // accepting is fine if it really parsed
    } catch (const InputError&) {
      // expected rejection path
    }
    // Anything else (CheckError, segfault, std::bad_alloc) fails the test.
  }
}

TEST(FuzzParsers, NmapSurvivesTokenSoup) {
  expect_no_crash(
      [](const std::string& t) { return parse_nmap(t); },
      {"circuit", "input", "reg", "module", "lut", "connect", "output",
       "adder", "mult", "mux", "alu", "a", "b", "c", "x", "4", "16", "-1",
       "plane=0", "plane=9", "truth=ff", "a[0]", "a[99]", "s.cout", "#"},
      101, 300);
}

TEST(FuzzParsers, BlifSurvivesTokenSoup) {
  expect_no_crash(
      [](const std::string& t) { return parse_blif(t); },
      {".model", ".inputs", ".outputs", ".names", ".latch", ".end", "m",
       "a", "b", "y", "q", "1", "0", "-", "11 1", "0- 1", "1 0", "\\"},
      202, 300);
}

TEST(FuzzParsers, VhdlSurvivesTokenSoup) {
  expect_no_crash(
      [](const std::string& t) { return parse_vhdl(t); },
      {"entity", "is", "port", "(", ")", ";", ":", "in", "out",
       "std_logic", "std_logic_vector", "downto", "0", "7", "end",
       "architecture", "of", "signal", "begin", "process", "rising_edge",
       "if", "then", "<=", "+", "*", "and", "when", "else", "'1'", "a",
       "b", "clk", "--"},
      303, 300);
}

TEST(FuzzParsers, BenchSurvivesTokenSoup) {
  expect_no_crash(
      [](const std::string& t) { return parse_bench(t); },
      {"INPUT(a)", "OUTPUT(z)", "z", "=", "AND(a, b)", "NAND(a,b,c)",
       "DFF(a)", "NOT(a)", "G1", "G2", "(", ")", ",", "#", "="},
      404, 300);
}

TEST(FuzzParsers, VerilogSurvivesTokenSoup) {
  expect_no_crash(
      [](const std::string& t) { return parse_verilog(t); },
      {"module", "endmodule", "input", "output", "wire", "reg", "assign",
       "always", "@", "(", ")", ";", ",", "=", "<=", "?", ":", "posedge",
       "begin", "end", "and", "nand", "not", "buf", "[7:0]", "[0]", "m",
       "clk", "a", "b", "g1", "+", "*", "&", "|", "^", "//"},
      505, 300);
}

TEST(FuzzParsers, DefectMapSurvivesTokenSoup) {
  expect_no_crash(
      [](const std::string& t) { return parse_defect_map(t); },
      {"defect_map", "v1", "v2", "grid", "smb", "le", "wire", "direct",
       "len1", "len4", "global", "h", "v", "e", "w", "n", "s", "0", "1",
       "7", "8", "15", "-1", "999999999999", "3.5", "#", "grid 8 8",
       "smb 1 2", "le 3 4 7", "wire len1 0 0 h 2"},
      606, 300);
}

TEST(FuzzParsers, DefectRatesSurviveTokenSoup) {
  expect_no_crash(
      [](const std::string& t) { return parse_defect_rates(t); },
      {"seed=", "le=", "smb=", "wire=", "bogus=", "seed=7", "le=0.01",
       "smb=1.0", "wire=-0.5", "le=2", "wire=nan", "0.5", "1e300", ",",
       "=", "seed=0xff", ""},
      707, 300);
}

// --- structured hostile corpora ---------------------------------------------
//
// Beyond token soup: every parser must turn (a) valid programs truncated
// at arbitrary byte offsets, (b) valid programs with embedded NUL bytes,
// and (c) grammatical programs carrying absurdly oversized tokens into a
// parsed design or an InputError — never a CheckError, bad_alloc, or an
// uncaught std::stoull-style exception.

const char kValidNmap[] =
    "circuit c\ninput a 4\ninput b 4\nreg r 4\n"
    "module m adder a b\nconnect r m\noutput o m\n"
    "lut g a[0] b[1] truth=6\n";
const char kValidBlif[] =
    ".model m\n.inputs a b\n.outputs y\n.latch a q 0\n"
    ".names a b y\n11 1\n.end\n";
const char kValidVhdl[] =
    "entity e is port (a : in std_logic; b : in std_logic;\n"
    "  y : out std_logic);\nend e;\n"
    "architecture rtl of e is begin\n  y <= a and b;\nend rtl;\n";
const char kValidVerilog[] =
    "module m(a, b, y);\n  input a, b;\n  output y;\n"
    "  assign y = a & b;\nendmodule\n";
const char kValidDefectMap[] =
    "defect_map v1\n# a comment\ngrid 8 8\nsmb 1 2\nle 3 4 7\n"
    "wire direct 0 0 e 1\nwire len1 0 0 h 2\nwire global 5 0 v 1\n";

template <typename ParseFn>
void expect_clean_rejection(ParseFn parse, const std::string& text) {
  try {
    parse(text);  // accepting is fine if it really parsed
  } catch (const InputError&) {
    // expected rejection path
  }
  // Anything else (CheckError, std::out_of_range, ...) fails the test.
}

template <typename ParseFn>
void truncation_sweep(ParseFn parse, const std::string& program) {
  for (std::size_t cut = 0; cut <= program.size(); ++cut)
    expect_clean_rejection(parse, program.substr(0, cut));
}

template <typename ParseFn>
void embedded_nul_sweep(ParseFn parse, const std::string& program,
                        std::uint64_t seed) {
  Rng rng(seed);
  for (int i = 0; i < 64; ++i) {
    std::string text = program;
    int nuls = rng.next_int(1, 4);
    for (int n = 0; n < nuls; ++n)
      text[static_cast<std::size_t>(rng.next_below(text.size()))] = '\0';
    expect_clean_rejection(parse, text);
  }
}

TEST(FuzzParsers, TruncatedProgramsRejectCleanly) {
  truncation_sweep([](const std::string& t) { return parse_nmap(t); },
                   kValidNmap);
  truncation_sweep([](const std::string& t) { return parse_blif(t); },
                   kValidBlif);
  truncation_sweep([](const std::string& t) { return parse_vhdl(t); },
                   kValidVhdl);
  truncation_sweep([](const std::string& t) { return parse_verilog(t); },
                   kValidVerilog);
  truncation_sweep([](const std::string& t) { return parse_defect_map(t); },
                   kValidDefectMap);
}

TEST(FuzzParsers, EmbeddedNulBytesRejectCleanly) {
  embedded_nul_sweep([](const std::string& t) { return parse_nmap(t); },
                     kValidNmap, 11);
  embedded_nul_sweep([](const std::string& t) { return parse_blif(t); },
                     kValidBlif, 22);
  embedded_nul_sweep([](const std::string& t) { return parse_vhdl(t); },
                     kValidVhdl, 33);
  embedded_nul_sweep([](const std::string& t) { return parse_verilog(t); },
                     kValidVerilog, 44);
  embedded_nul_sweep([](const std::string& t) { return parse_defect_map(t); },
                     kValidDefectMap, 55);
}

TEST(FuzzParsers, OversizedTokensRejectCleanly) {
  const std::string huge_name(70000, 'a');
  const std::string huge_hex(5000, 'f');
  const std::string huge_digits(300, '9');

  // nmap: >64-bit / non-hex truth tables hit the std::stoull guard;
  // giant widths and identifiers must not blow up allocation-side.
  expect_clean_rejection(
      [](const std::string& t) { return parse_nmap(t); },
      "circuit c\ninput a 1\nlut g a truth=" + huge_hex + "\n");
  expect_clean_rejection(
      [](const std::string& t) { return parse_nmap(t); },
      "circuit c\ninput a 1\nlut g a truth=zz\n");
  expect_clean_rejection(
      [](const std::string& t) { return parse_nmap(t); },
      "circuit c\ninput a " + huge_digits + "\noutput o a\n");
  expect_clean_rejection(
      [](const std::string& t) { return parse_nmap(t); },
      "circuit " + huge_name + "\ninput a 4\noutput o a\n");

  // BLIF: oversized cube rows and identifiers.
  expect_clean_rejection(
      [](const std::string& t) { return parse_blif(t); },
      ".model m\n.inputs a\n.outputs y\n.names a y\n" +
          std::string(100000, '1') + " 1\n.end\n");
  expect_clean_rejection(
      [](const std::string& t) { return parse_blif(t); },
      ".model " + huge_name + "\n.inputs a\n.outputs y\n.names a y\n1 1\n"
      ".end\n");

  // VHDL: astronomical ranges must reject, not allocate terabytes.
  expect_clean_rejection(
      [](const std::string& t) { return parse_vhdl(t); },
      "entity e is port (a : in std_logic_vector(" + huge_digits +
          " downto 0); y : out std_logic);\nend e;\n"
          "architecture rtl of e is begin y <= a(0); end rtl;\n");
  expect_clean_rejection(
      [](const std::string& t) { return parse_vhdl(t); },
      "entity " + huge_name + " is port (a : in std_logic);\nend e;\n");

  // Verilog: giant vector bounds and bit selects.
  expect_clean_rejection(
      [](const std::string& t) { return parse_verilog(t); },
      "module m(a, y);\n  input [" + huge_digits +
          ":0] a;\n  output y;\n  assign y = a[0];\nendmodule\n");
  expect_clean_rejection(
      [](const std::string& t) { return parse_verilog(t); },
      "module m(a, y);\n  input a;\n  output y;\n  assign y = a[" +
          huge_digits + "];\nendmodule\n");
}

TEST(FuzzParsers, DefectMapHostileInputsRejectCleanly) {
  const std::string huge_digits(300, '9');
  auto parse = [](const std::string& t) { return parse_defect_map(t); };
  // Duplicate sites and channels.
  expect_clean_rejection(parse,
                         "defect_map v1\ngrid 4 4\nsmb 1 1\nsmb 1 1\n");
  expect_clean_rejection(parse,
                         "defect_map v1\ngrid 4 4\nle 1 1 0\nle 1 1 0\n");
  expect_clean_rejection(
      parse,
      "defect_map v1\ngrid 4 4\nwire len4 1 1 v 2\nwire len4 1 1 v 1\n");
  // Out-of-grid coordinates and sites before any grid line.
  expect_clean_rejection(parse, "defect_map v1\ngrid 4 4\nsmb 4 0\n");
  expect_clean_rejection(parse, "defect_map v1\ngrid 4 4\nle 0 -1 0\n");
  expect_clean_rejection(parse, "defect_map v1\nsmb 0 0\ngrid 4 4\n");
  // Overflowing numbers must hit the integer guard, not wrap or throw
  // std::out_of_range past the parser.
  expect_clean_rejection(parse,
                         "defect_map v1\ngrid " + huge_digits + " 4\n");
  expect_clean_rejection(
      parse, "defect_map v1\ngrid 4 4\nwire global 0 0 h " + huge_digits +
                 "\n");
  expect_clean_rejection(parse, "defect_map v1\ngrid 4 4\nle 0 0 " +
                                    huge_digits + "\n");
  // Wrong header, version, kind, direction, and count domain.
  expect_clean_rejection(parse, "defect_map v2\ngrid 4 4\n");
  expect_clean_rejection(parse, "grid 4 4\nsmb 0 0\n");
  expect_clean_rejection(parse,
                         "defect_map v1\ngrid 4 4\nwire len9 0 0 h 1\n");
  expect_clean_rejection(parse,
                         "defect_map v1\ngrid 4 4\nwire len1 0 0 e 1\n");
  expect_clean_rejection(parse,
                         "defect_map v1\ngrid 4 4\nwire len1 0 0 h 0\n");

  // Inline rate specs: unknown keys, out-of-range rates, garbage values.
  auto rates = [](const std::string& t) { return parse_defect_rates(t); };
  expect_clean_rejection(rates, "seed=1,bogus=0.5");
  expect_clean_rejection(rates, "le=1.5");
  expect_clean_rejection(rates, "wire=-0.01");
  expect_clean_rejection(rates, "le=" + huge_digits + "e300");
  expect_clean_rejection(rates, "seed=" + huge_digits);
  expect_clean_rejection(rates, "seed");
  expect_clean_rejection(rates, ",,,");
}

// --- serving job lines ------------------------------------------------------
//
// The JSON-lines job parser (serve/job.h) sits directly on untrusted
// stdin, so it gets the full hostile treatment: token soup over JSON/job
// vocabulary, truncation at every byte, embedded NULs, and the
// duplicate/unknown-key strictness the schema promises.

const char kValidJobLine[] =
    "{\"id\":\"j1\",\"circuit\":\"bench:ex1\",\"objective\":\"delay\","
    "\"seed\":7,\"level\":2,\"area\":64,\"delay\":12.5,"
    "\"deadline_ms\":100,\"trace\":true}";

TEST(FuzzParsers, JobLinesSurviveTokenSoup) {
  expect_no_crash(
      [](const std::string& t) { return parse_job_line(t, 1); },
      {"{", "}", "[", "]", ":", ",", "\"", "\\", "\"circuit\"", "\"id\"",
       "\"seed\"", "\"level\"", "\"area\"", "\"delay\"", "\"objective\"",
       "\"trace\"", "\"deadline_ms\"", "\"no_share\"", "\"fault\"",
       "\"arch\"", "\"defects\"", "\"bench:ex1\"", "\"at\"", "\"both\"",
       "true", "false", "null", "0", "-1", "1.5", "1e300", "42",
       "999999999999999999999", "\"\\u0041\"", "\"\\n\""},
      808, 400);
}

TEST(FuzzParsers, TruncatedJobLinesRejectCleanly) {
  truncation_sweep(
      [](const std::string& t) { return parse_job_line(t, 1); },
      kValidJobLine);
}

TEST(FuzzParsers, JobLinesWithEmbeddedNulsRejectCleanly) {
  embedded_nul_sweep(
      [](const std::string& t) { return parse_job_line(t, 1); },
      kValidJobLine, 66);
}

TEST(FuzzParsers, JobLinesEnforceKeyStrictness) {
  auto parse = [](const std::string& t) { return parse_job_line(t, 1); };
  // Duplicate keys — same value, different value, and a duplicate id.
  expect_clean_rejection(parse,
                         "{\"circuit\":\"a\",\"circuit\":\"a\"}");
  expect_clean_rejection(parse,
                         "{\"circuit\":\"a\",\"seed\":1,\"seed\":2}");
  expect_clean_rejection(parse,
                         "{\"id\":\"x\",\"id\":\"y\",\"circuit\":\"a\"}");
  EXPECT_THROW(parse("{\"circuit\":\"a\",\"circuit\":\"a\"}"), InputError);
  // Unknown keys, including near-misses of real ones.
  EXPECT_THROW(parse("{\"circuit\":\"a\",\"Circuit\":\"b\"}"), InputError);
  EXPECT_THROW(parse("{\"circuit\":\"a\",\"sed\":1}"), InputError);
  EXPECT_THROW(parse("{\"circuit\":\"a\",\"deadline\":1}"), InputError);
  // Oversized tokens must reject or parse, never crash.
  const std::string huge(70000, 'x');
  expect_clean_rejection(parse, "{\"circuit\":\"" + huge + "\"}");
  expect_clean_rejection(parse, "{\"" + huge + "\":1,\"circuit\":\"a\"}");
  expect_clean_rejection(parse,
                         "{\"circuit\":\"a\",\"seed\":" +
                             std::string(300, '9') + "}");
}

TEST(FuzzParsers, AcceptedNmapInputsAlwaysValidate) {
  // Whenever the parser accepts, the resulting network must pass
  // validate() (the parser already runs it; this pins the contract).
  Rng rng(7);
  const std::vector<std::string> vocab = {
      "circuit c\n", "input a 4\n", "input b 4\n", "reg r 4\n",
      "module m adder a b\n", "module p mult a b\n", "connect r a\n",
      "output o a\n", "lut g a[0] b[1]\n"};
  int accepted = 0;
  for (int i = 0; i < 200; ++i) {
    std::string text;
    int lines = rng.next_int(2, 8);
    for (int l = 0; l < lines; ++l)
      text += vocab[static_cast<std::size_t>(rng.next_below(vocab.size()))];
    try {
      Design d = parse_nmap(text);
      EXPECT_NO_THROW(d.net.validate());
      ++accepted;
    } catch (const InputError&) {
    }
  }
  EXPECT_GT(accepted, 0);  // the generator does produce valid programs
}

}  // namespace
}  // namespace nanomap
