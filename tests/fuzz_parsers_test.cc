// Robustness: the front ends must reject arbitrary garbage with a clean
// InputError (never crash, never CheckError, never accept structurally
// broken netlists that fail validation later).
#include <gtest/gtest.h>

#include "map/bench_format.h"
#include "rtl/blif.h"
#include "rtl/parser.h"
#include "rtl/vhdl.h"
#include "util/rng.h"

namespace nanomap {
namespace {

// Token soup built from each grammar's own vocabulary — much better at
// reaching deep parser states than pure random bytes.
std::string token_soup(Rng* rng, const std::vector<std::string>& vocab,
                       int tokens) {
  std::string out;
  for (int i = 0; i < tokens; ++i) {
    out += vocab[static_cast<std::size_t>(rng->next_below(vocab.size()))];
    out += rng->next_bool(0.2) ? "\n" : " ";
  }
  return out;
}

template <typename ParseFn>
void expect_no_crash(ParseFn parse, const std::vector<std::string>& vocab,
                     std::uint64_t seed, int iterations) {
  Rng rng(seed);
  for (int i = 0; i < iterations; ++i) {
    std::string text = token_soup(&rng, vocab, rng.next_int(3, 40));
    try {
      parse(text);  // accepting is fine if it really parsed
    } catch (const InputError&) {
      // expected rejection path
    }
    // Anything else (CheckError, segfault, std::bad_alloc) fails the test.
  }
}

TEST(FuzzParsers, NmapSurvivesTokenSoup) {
  expect_no_crash(
      [](const std::string& t) { return parse_nmap(t); },
      {"circuit", "input", "reg", "module", "lut", "connect", "output",
       "adder", "mult", "mux", "alu", "a", "b", "c", "x", "4", "16", "-1",
       "plane=0", "plane=9", "truth=ff", "a[0]", "a[99]", "s.cout", "#"},
      101, 300);
}

TEST(FuzzParsers, BlifSurvivesTokenSoup) {
  expect_no_crash(
      [](const std::string& t) { return parse_blif(t); },
      {".model", ".inputs", ".outputs", ".names", ".latch", ".end", "m",
       "a", "b", "y", "q", "1", "0", "-", "11 1", "0- 1", "1 0", "\\"},
      202, 300);
}

TEST(FuzzParsers, VhdlSurvivesTokenSoup) {
  expect_no_crash(
      [](const std::string& t) { return parse_vhdl(t); },
      {"entity", "is", "port", "(", ")", ";", ":", "in", "out",
       "std_logic", "std_logic_vector", "downto", "0", "7", "end",
       "architecture", "of", "signal", "begin", "process", "rising_edge",
       "if", "then", "<=", "+", "*", "and", "when", "else", "'1'", "a",
       "b", "clk", "--"},
      303, 300);
}

TEST(FuzzParsers, BenchSurvivesTokenSoup) {
  expect_no_crash(
      [](const std::string& t) { return parse_bench(t); },
      {"INPUT(a)", "OUTPUT(z)", "z", "=", "AND(a, b)", "NAND(a,b,c)",
       "DFF(a)", "NOT(a)", "G1", "G2", "(", ")", ",", "#", "="},
      404, 300);
}

TEST(FuzzParsers, AcceptedNmapInputsAlwaysValidate) {
  // Whenever the parser accepts, the resulting network must pass
  // validate() (the parser already runs it; this pins the contract).
  Rng rng(7);
  const std::vector<std::string> vocab = {
      "circuit c\n", "input a 4\n", "input b 4\n", "reg r 4\n",
      "module m adder a b\n", "module p mult a b\n", "connect r a\n",
      "output o a\n", "lut g a[0] b[1]\n"};
  int accepted = 0;
  for (int i = 0; i < 200; ++i) {
    std::string text;
    int lines = rng.next_int(2, 8);
    for (int l = 0; l < lines; ++l)
      text += vocab[static_cast<std::size_t>(rng.next_below(vocab.size()))];
    try {
      Design d = parse_nmap(text);
      EXPECT_NO_THROW(d.net.validate());
      ++accepted;
    } catch (const InputError&) {
    }
  }
  EXPECT_GT(accepted, 0);  // the generator does produce valid programs
}

}  // namespace
}  // namespace nanomap
