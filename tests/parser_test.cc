#include <gtest/gtest.h>

#include "netlist/simulate.h"
#include "rtl/parser.h"

namespace nanomap {
namespace {

TEST(Parser, MinimalCircuit) {
  Design d = parse_nmap(R"(
circuit tiny
input a 4
input b 4
module s adder a b
output o s
)");
  EXPECT_EQ(d.name, "tiny");
  EXPECT_EQ(d.net.num_inputs(), 8);
  EXPECT_EQ(d.net.num_luts(), 8);
  EXPECT_EQ(d.net.num_outputs(), 4);
  ASSERT_EQ(d.modules.size(), 1u);
  EXPECT_EQ(d.module(0).type, ModuleType::kAdder);
}

TEST(Parser, CommentsAndBlankLinesIgnored) {
  Design d = parse_nmap(R"(
# a comment
circuit c

  # indented comment
input a 2
input b 2
module m adder a b
output o m
)");
  EXPECT_EQ(d.net.num_luts(), 4);
}

TEST(Parser, RegistersAndConnect) {
  Design d = parse_nmap(R"(
circuit seq
input x 4
reg r 4
module s adder r r
connect r x
output o s
)");
  EXPECT_EQ(d.net.num_flipflops(), 4);
  d.net.validate();
}

TEST(Parser, BitIndexing) {
  Design d = parse_nmap(R"(
circuit bits
input a 4
input b 4
lut t a[0] a[3] b[1]
output o t
)");
  EXPECT_EQ(d.net.num_luts(), 1);
}

TEST(Parser, LutTruthOverrideIsHex) {
  Design d = parse_nmap(R"(
circuit t
input a 2
lut g a[0] a[1] truth=8
output o g
)");
  Simulator sim(d.net);
  // truth 0x8 = AND
  int a0 = 0, a1 = 1;
  sim.set_input(a0, true);
  sim.set_input(a1, true);
  sim.evaluate();
  EXPECT_TRUE(sim.value(2));
  sim.set_input(a1, false);
  sim.evaluate();
  EXPECT_FALSE(sim.value(2));
}

TEST(Parser, MuxAndAluForms) {
  Design d = parse_nmap(R"(
circuit forms
input sel 1
input op 2
input a 4
input b 4
module m mux sel a b
module u alu op a b
output o1 m
output o2 u
)");
  EXPECT_EQ(d.modules.size(), 2u);
  EXPECT_EQ(d.module(0).type, ModuleType::kMux);
  EXPECT_EQ(d.module(1).type, ModuleType::kAluSlice);
}

TEST(Parser, MultiPlane) {
  Design d = parse_nmap(R"(
circuit planes
input a 4
reg r0 4 plane=0
module m0 adder r0 r0 plane=0
reg r1 4 plane=1
module m1 adder r1 r1 plane=1
connect r0 a
connect r1 m0
output o m1
)");
  EXPECT_EQ(d.net.num_planes(), 2);
  d.net.validate();
}

TEST(Parser, CarryOutExposed) {
  Design d = parse_nmap(R"(
circuit c
input a 4
input b 4
module s adder a b
output co s.cout
)");
  EXPECT_EQ(d.net.num_outputs(), 1);
}

TEST(Parser, FunctionalThroughParser) {
  Design d = parse_nmap(R"(
circuit func
input a 6
input b 6
module p mult a b
output o p
)");
  Simulator sim(d.net);
  std::vector<int> a_bus, b_bus, o_bus;
  for (int id = 0; id < d.net.size(); ++id) {
    const LutNode& n = d.net.node(id);
    if (n.kind == NodeKind::kInput) {
      (n.name[0] == 'a' ? a_bus : b_bus).push_back(id);
    } else if (n.kind == NodeKind::kOutput) {
      o_bus.push_back(id);
    }
  }
  sim.set_input_bus(a_bus, 7);
  sim.set_input_bus(b_bus, 6);
  sim.evaluate();
  EXPECT_EQ(sim.read_bus(o_bus), (7u * 6u) & 63u);
}

// --- error diagnostics -------------------------------------------------------

TEST(ParserErrors, UnknownSignal) {
  EXPECT_THROW(parse_nmap("circuit c\nlut g nosuch\n"), InputError);
}

TEST(ParserErrors, MissingCircuitDirective) {
  EXPECT_THROW(parse_nmap("input a 4\n"), InputError);
}

TEST(ParserErrors, WidthMismatch) {
  EXPECT_THROW(parse_nmap(R"(
circuit c
input a 4
input b 3
module s adder a b
)"),
               InputError);
}

TEST(ParserErrors, RedefinitionRejected) {
  EXPECT_THROW(parse_nmap(R"(
circuit c
input a 4
input a 4
)"),
               InputError);
}

TEST(ParserErrors, BitIndexOutOfRange) {
  EXPECT_THROW(parse_nmap(R"(
circuit c
input a 4
lut g a[4]
)"),
               InputError);
}

TEST(ParserErrors, ConnectToNonRegister) {
  EXPECT_THROW(parse_nmap(R"(
circuit c
input a 4
input b 4
connect a b
)"),
               InputError);
}

TEST(ParserErrors, UnknownDirective) {
  EXPECT_THROW(parse_nmap("circuit c\nfrobnicate x\n"), InputError);
}

TEST(ParserErrors, UnknownModuleType) {
  EXPECT_THROW(parse_nmap(R"(
circuit c
input a 4
input b 4
module m divider a b
)"),
               InputError);
}

TEST(ParserErrors, MuxSelectMustBeOneBit) {
  EXPECT_THROW(parse_nmap(R"(
circuit c
input s 2
input a 4
input b 4
module m mux s a b
)"),
               InputError);
}

TEST(ParserErrors, LineNumberInDiagnostic) {
  try {
    parse_nmap("circuit c\ninput a 4\nlut g nosuch\n");
    FAIL();
  } catch (const InputError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(Parser, MissingFileThrows) {
  EXPECT_THROW(parse_nmap_file("/nonexistent/path.nmap"), InputError);
}

TEST(Parser, DesignSummaryMentionsModules) {
  Design d = parse_nmap(R"(
circuit s
input a 4
input b 4
module m mult a b
output o m
)");
  std::string summary = design_summary(d);
  EXPECT_NE(summary.find("multiplier"), std::string::npos);
  EXPECT_NE(summary.find("'s'"), std::string::npos);
}

}  // namespace
}  // namespace nanomap
