#include <gtest/gtest.h>

#include "bitstream/bitmap.h"
#include "circuits/benchmarks.h"
#include "netlist/plane.h"

namespace nanomap {
namespace {

struct Mapped {
  Design d;
  DesignSchedule sched;
  ClusteredDesign cd;
};

Mapped map_design(Design design, int level, const ArchParams& arch) {
  Mapped m;
  m.d = std::move(design);
  CircuitParams p = extract_circuit_params(m.d.net);
  m.sched.folding = make_folding_config(p, level);
  m.sched.planes_share = !m.sched.folding.no_folding();
  for (int plane = 0; plane < p.num_plane; ++plane) {
    PlaneScheduleGraph g = build_schedule_graph(m.d, plane, m.sched.folding);
    m.sched.plane_results.push_back(schedule_plane(g, arch));
    m.sched.graphs.push_back(std::move(g));
  }
  m.cd = temporal_cluster(m.d, m.sched, arch);
  return m;
}

TEST(Bitmap, EveryLutGetsItsTruthTable) {
  ArchParams arch = ArchParams::paper_instance();
  Mapped m = map_design(make_ex1(4), 2, arch);
  ConfigBitmap bm = generate_bitmap(m.d, m.sched, m.cd, nullptr, arch);
  ASSERT_EQ(bm.num_cycles, m.cd.num_cycles);
  int configured = 0;
  for (const CycleConfig& cc : bm.cycles)
    for (const SmbConfig& smb : cc.smbs)
      for (const LeConfig& le : smb.les)
        if (le.lut_used) ++configured;
  EXPECT_EQ(configured, m.d.net.num_luts());

  // Spot-check one LUT's truth and input codes.
  for (int id = 0; id < m.d.net.size(); ++id) {
    const LutNode& n = m.d.net.node(id);
    if (n.kind != NodeKind::kLut) continue;
    int c = m.cd.cycle_of[static_cast<std::size_t>(id)];
    const LutPlacement& p = m.cd.place[static_cast<std::size_t>(id)];
    const LeConfig& le = bm.cycles[static_cast<std::size_t>(c)]
                             .smbs[static_cast<std::size_t>(p.smb)]
                             .les[static_cast<std::size_t>(p.slot)];
    ASSERT_TRUE(le.lut_used);
    EXPECT_EQ(le.truth, n.truth);
    ASSERT_EQ(le.input_sel.size(), n.fanins.size());
    for (std::size_t i = 0; i < n.fanins.size(); ++i)
      EXPECT_EQ(le.input_sel[i],
                static_cast<std::uint32_t>(n.fanins[i]) + 1);
  }
}

TEST(Bitmap, FfWriteMaskSetForStoredValues) {
  ArchParams arch = ArchParams::paper_instance();
  Mapped m = map_design(make_ex1(4), 1, arch);
  ConfigBitmap bm = generate_bitmap(m.d, m.sched, m.cd, nullptr, arch);
  int writes = 0;
  for (const CycleConfig& cc : bm.cycles)
    for (const SmbConfig& smb : cc.smbs)
      for (const LeConfig& le : smb.les)
        if (le.ff_write_mask != 0) ++writes;
  EXPECT_GT(writes, 0);
}

TEST(Bitmap, FitsNramRespectsK) {
  ArchParams arch = ArchParams::paper_instance();  // k = 16
  Mapped m = map_design(make_ex1(4), 1, arch);
  ConfigBitmap bm = generate_bitmap(m.d, m.sched, m.cd, nullptr, arch);
  // ex1(4) depth 10ish at level 1 -> ~10 cycles <= 16.
  EXPECT_TRUE(bm.fits_nram(arch));
  ArchParams tiny = arch;
  tiny.num_reconf = 2;
  EXPECT_FALSE(bm.fits_nram(tiny));
  EXPECT_TRUE(bm.fits_nram(ArchParams::paper_instance_unbounded_k()));
}

TEST(Bitmap, BitAccountingGrowsWithCycles) {
  ArchParams arch = ArchParams::paper_instance_unbounded_k();
  Mapped flat = map_design(make_ex1(4), 0, arch);
  Mapped folded = map_design(make_ex1(4), 1, arch);
  ConfigBitmap bm_flat =
      generate_bitmap(flat.d, flat.sched, flat.cd, nullptr, arch);
  ConfigBitmap bm_folded =
      generate_bitmap(folded.d, folded.sched, folded.cd, nullptr, arch);
  EXPECT_EQ(bm_flat.num_cycles, 1);
  EXPECT_GT(bm_folded.num_cycles, 1);
  EXPECT_GT(bm_flat.total_bits, 0u);
  EXPECT_GT(bm_folded.total_bits, 0u);
}

TEST(Bitmap, SerializationHeaderAndDeterminism) {
  ArchParams arch = ArchParams::paper_instance();
  Mapped m = map_design(make_ex1(4), 2, arch);
  ConfigBitmap bm = generate_bitmap(m.d, m.sched, m.cd, nullptr, arch);
  std::vector<std::uint8_t> bytes = serialize_bitmap(bm);
  ASSERT_GE(bytes.size(), 12u);
  // Magic "NMAP" little-endian.
  EXPECT_EQ(bytes[0], 0x50);  // 'P'
  EXPECT_EQ(bytes[1], 0x41);  // 'A'
  EXPECT_EQ(bytes[2], 0x4d);  // 'M'
  EXPECT_EQ(bytes[3], 0x4e);  // 'N'
  EXPECT_EQ(bytes[4], static_cast<std::uint8_t>(bm.num_cycles));
  std::vector<std::uint8_t> again = serialize_bitmap(bm);
  EXPECT_EQ(bytes, again);
}

}  // namespace
}  // namespace nanomap
