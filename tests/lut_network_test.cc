#include <gtest/gtest.h>

#include "netlist/lut_network.h"
#include "netlist/plane.h"

namespace nanomap {
namespace {

// a, b -> l1 = a&b -> l2 = l1^a -> output
LutNetwork simple_net() {
  LutNetwork net;
  int a = net.add_input("a");
  int b = net.add_input("b");
  int l1 = net.add_lut("l1", {a, b}, 0x8, 0);          // AND
  int l2 = net.add_lut("l2", {l1, a}, 0x6, 0);         // XOR
  net.add_output("o", l2);
  return net;
}

TEST(LutNetwork, CountsByKind) {
  LutNetwork net = simple_net();
  EXPECT_EQ(net.num_inputs(), 2);
  EXPECT_EQ(net.num_luts(), 2);
  EXPECT_EQ(net.num_outputs(), 1);
  EXPECT_EQ(net.num_flipflops(), 0);
  EXPECT_EQ(net.size(), 5);
}

TEST(LutNetwork, LevelsFollowLongestPath) {
  LutNetwork net = simple_net();
  net.compute_levels();
  EXPECT_EQ(net.node(2).level, 1);  // l1
  EXPECT_EQ(net.node(3).level, 2);  // l2
  EXPECT_EQ(net.max_depth(), 2);
}

TEST(LutNetwork, FanoutsDerived) {
  LutNetwork net = simple_net();
  EXPECT_EQ(net.fanouts(0).size(), 2u);  // a feeds l1 and l2
  EXPECT_EQ(net.fanouts(2).size(), 1u);  // l1 feeds l2
}

TEST(LutNetwork, PlaneStats) {
  LutNetwork net = simple_net();
  net.compute_levels();
  PlaneStats s = net.plane_stats(0);
  EXPECT_EQ(s.num_luts, 2);
  EXPECT_EQ(s.depth, 2);
  EXPECT_EQ(s.num_inputs, 2);
}

TEST(LutNetwork, FlipFlopConnectivity) {
  LutNetwork net;
  int a = net.add_input("a");
  int ff = net.add_flipflop("r", 0);
  int l = net.add_lut("l", {ff, a}, 0x6, 0);
  net.set_flipflop_input(ff, l);
  net.add_output("o", l);
  net.compute_levels();
  EXPECT_NO_THROW(net.validate());
  EXPECT_EQ(net.node(l).level, 1);  // FF fanin enters at level 0
}

TEST(LutNetwork, UnconnectedFlipFlopFailsValidation) {
  LutNetwork net;
  net.add_input("a");
  net.add_flipflop("r", 0);
  EXPECT_THROW(net.validate(), CheckError);
}

TEST(LutNetwork, CrossPlaneCombinationalEdgeRejected) {
  LutNetwork net;
  int a = net.add_input("a", 0);
  int b = net.add_input("b", 0);
  int l0 = net.add_lut("l0", {a, b}, 0x8, 0);
  // LUT in plane 1 fed directly (not through a FF) by a plane-0 LUT.
  net.add_lut("l1", {l0, a}, 0x6, 1);
  EXPECT_THROW(net.compute_levels(), CheckError);
}

TEST(LutNetwork, CombinationalCycleDetected) {
  LutNetwork net;
  int a = net.add_input("a");
  int l1 = net.add_lut("l1", {a, a /*placeholder*/}, 0x6, 0);
  int l2 = net.add_lut("l2", {l1, a}, 0x6, 0);
  // Introduce the cycle by rewriting l1's fanin to l2.
  net.mutable_node(l1).fanins[1] = l2;
  EXPECT_THROW(net.compute_levels(), CheckError);
}

TEST(LutNetwork, TooManyFaninsRejected) {
  LutNetwork net;
  std::vector<int> ins;
  for (int i = 0; i < 7; ++i) ins.push_back(net.add_input("i"));
  EXPECT_THROW(net.add_lut("big", ins, 0, 0), CheckError);
}

TEST(LutNetwork, EvalLutUsesFaninOrderAsMintermBits) {
  LutNetwork net;
  int a = net.add_input("a");
  int b = net.add_input("b");
  // truth 0x8 = AND: output 1 only for minterm 3 (both inputs 1).
  int l = net.add_lut("l", {a, b}, 0x8, 0);
  EXPECT_FALSE(net.eval_lut(l, {false, false}));
  EXPECT_FALSE(net.eval_lut(l, {true, false}));
  EXPECT_FALSE(net.eval_lut(l, {false, true}));
  EXPECT_TRUE(net.eval_lut(l, {true, true}));
}

TEST(LutNetwork, TopologicalOrderRespectsLevels) {
  LutNetwork net = simple_net();
  net.compute_levels();
  std::vector<int> order = net.plane_luts_topological(0);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_LT(net.node(order[0]).level, net.node(order[1]).level);
}

TEST(LutNetwork, PlaneRegistersListed) {
  LutNetwork net;
  int a = net.add_input("a", 0);
  int f0 = net.add_flipflop("f0", 0);
  int f1 = net.add_flipflop("f1", 1);
  int l = net.add_lut("l", {a, f0}, 0x6, 0);
  net.set_flipflop_input(f0, a);
  net.set_flipflop_input(f1, l);
  EXPECT_EQ(net.plane_registers(0), std::vector<int>{f0});
  EXPECT_EQ(net.plane_registers(1), std::vector<int>{f1});
  EXPECT_EQ(net.num_planes(), 2);
}

TEST(CircuitParams, MultiPlaneExtraction) {
  LutNetwork net;
  int a = net.add_input("a", 0);
  int f1 = net.add_flipflop("r1", 1);
  int l0 = net.add_lut("l0", {a, a}, 0x6, 0);
  int l0b = net.add_lut("l0b", {l0, a}, 0x6, 0);
  int l1 = net.add_lut("l1", {f1, f1}, 0x6, 1);
  net.set_flipflop_input(f1, l0b);
  net.add_output("o", l1);
  net.compute_levels();

  CircuitParams p = extract_circuit_params(net);
  EXPECT_EQ(p.num_plane, 2);
  EXPECT_EQ(p.num_lut[0], 2);
  EXPECT_EQ(p.num_lut[1], 1);
  EXPECT_EQ(p.depth[0], 2);
  EXPECT_EQ(p.depth[1], 1);
  EXPECT_EQ(p.lut_max, 2);
  EXPECT_EQ(p.depth_max, 2);
  EXPECT_EQ(p.total_luts, 3);
  EXPECT_EQ(p.total_flipflops, 1);
  EXPECT_EQ(p.num_regs[1], 1);
}

TEST(LutNetwork, NodeKindNames) {
  EXPECT_STREQ(node_kind_name(NodeKind::kInput), "input");
  EXPECT_STREQ(node_kind_name(NodeKind::kLut), "lut");
  EXPECT_STREQ(node_kind_name(NodeKind::kFlipFlop), "flipflop");
  EXPECT_STREQ(node_kind_name(NodeKind::kOutput), "output");
}

}  // namespace
}  // namespace nanomap
