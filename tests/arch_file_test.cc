#include <gtest/gtest.h>

#include "arch/arch_file.h"

namespace nanomap {
namespace {

TEST(ArchFile, OverridesOnTopOfDefaults) {
  ArchParams a = parse_arch(R"(
# custom instance
num_reconf = 32
ff_per_le = 3
lut_delay_ps = 400.5
len1_tracks = 10
)");
  EXPECT_EQ(a.num_reconf, 32);
  EXPECT_EQ(a.ff_per_le, 3);
  EXPECT_DOUBLE_EQ(a.lut_delay_ps, 400.5);
  EXPECT_EQ(a.len1_tracks, 10);
  // Untouched fields keep the paper instance.
  EXPECT_EQ(a.lut_size, 4);
  EXPECT_EQ(a.les_per_mb, 4);
}

TEST(ArchFile, EmptyFileIsPaperInstance) {
  ArchParams a = parse_arch("");
  EXPECT_EQ(a.num_reconf, ArchParams::paper_instance().num_reconf);
  EXPECT_EQ(a.lut_size, 4);
}

TEST(ArchFile, RoundTrip) {
  ArchParams original = ArchParams::paper_instance();
  original.num_reconf = 24;
  original.global_wire_delay_ps = 612.0;
  original.nram_overhead = 0.2;
  ArchParams reparsed = parse_arch(write_arch(original));
  EXPECT_EQ(reparsed.num_reconf, 24);
  EXPECT_DOUBLE_EQ(reparsed.global_wire_delay_ps, 612.0);
  EXPECT_DOUBLE_EQ(reparsed.nram_overhead, 0.2);
  EXPECT_EQ(reparsed.les_per_smb(), original.les_per_smb());
}

TEST(ArchFile, Diagnostics) {
  EXPECT_THROW(parse_arch("frobnicate = 3\n"), InputError);
  EXPECT_THROW(parse_arch("lut_size 4\n"), InputError);
  EXPECT_THROW(parse_arch("lut_size = four\n"), InputError);
  // Structurally invalid architectures are rejected with InputError.
  EXPECT_THROW(parse_arch("lut_size = 9\n"), InputError);
  EXPECT_THROW(parse_arch(R"(
direct_links_per_side = 0
len1_tracks = 0
len4_tracks = 0
global_tracks = 0
)"),
               InputError);
}

TEST(ArchFile, MissingFileThrows) {
  EXPECT_THROW(parse_arch_file("/no/such/file.arch"), InputError);
}

}  // namespace
}  // namespace nanomap
