#include <gtest/gtest.h>

#include "netlist/simulate.h"
#include "rtl/module_expander.h"

namespace nanomap {
namespace {

TEST(Simulator, CombinationalXorChain) {
  LutNetwork net;
  int a = net.add_input("a");
  int b = net.add_input("b");
  int c = net.add_input("c");
  int x1 = net.add_lut("x1", {a, b}, 0x6, 0);
  int x2 = net.add_lut("x2", {x1, c}, 0x6, 0);
  net.add_output("o", x2);
  net.compute_levels();

  Simulator sim(net);
  for (int m = 0; m < 8; ++m) {
    sim.set_input(a, m & 1);
    sim.set_input(b, m & 2);
    sim.set_input(c, m & 4);
    sim.evaluate();
    bool expect = ((m & 1) != 0) ^ ((m & 2) != 0) ^ ((m & 4) != 0);
    EXPECT_EQ(sim.value(x2), expect) << "minterm " << m;
  }
}

TEST(Simulator, FlipFlopDelaysOneCycle) {
  LutNetwork net;
  int a = net.add_input("a", 0);
  int ff = net.add_flipflop("r", 0);
  int l = net.add_lut("buf", {ff, ff}, 0x8, 0);  // AND(q,q) = q
  net.set_flipflop_input(ff, a);
  net.add_output("o", l);
  net.compute_levels();

  Simulator sim(net);
  sim.reset(false);
  sim.set_input(a, true);
  sim.step();                 // captures a=1 into ff
  sim.set_input(a, false);
  sim.evaluate();
  EXPECT_TRUE(sim.value(l));  // ff holds last cycle's 1
  sim.step();                 // captures a=0
  sim.evaluate();
  EXPECT_FALSE(sim.value(l));
}

TEST(Simulator, ShiftRegisterThroughFlipFlops) {
  LutNetwork net;
  int a = net.add_input("a", 0);
  int f0 = net.add_flipflop("f0", 0);
  int f1 = net.add_flipflop("f1", 0);
  net.set_flipflop_input(f0, a);
  net.set_flipflop_input(f1, f0);
  int probe = net.add_lut("probe", {f1, f1}, 0x8, 0);
  net.add_output("o", probe);
  net.compute_levels();

  Simulator sim(net);
  sim.reset(false);
  sim.set_input(a, true);
  sim.step();  // f0 <- 1, f1 <- old f0 (0)
  sim.set_input(a, false);
  sim.evaluate();
  EXPECT_FALSE(sim.value(probe));
  sim.step();  // f1 <- 1
  sim.evaluate();
  EXPECT_TRUE(sim.value(probe));
}

TEST(Simulator, ReadBusLsbFirst) {
  Design d;
  SignalBus in = add_input_bus(d, "in", 8, 0);
  ExpandedModule sum = expand_adder(d, "s", in, in, 0);  // 2*in
  add_output_bus(d, "o", sum.out);
  d.net.compute_levels();

  Simulator sim(d.net);
  sim.set_input_bus(in, 13);
  sim.evaluate();
  EXPECT_EQ(sim.read_bus(sum.out), 26u);
}

}  // namespace
}  // namespace nanomap
