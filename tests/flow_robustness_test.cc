// End-to-end robustness: the full physical flow over randomly generated
// sequential designs of varying shape, checking the invariants that must
// hold for *any* input — not just the paper benchmarks.
#include <gtest/gtest.h>

#include "bitstream/bitmap.h"
#include "circuits/random_dag.h"
#include "flow/nanomap_flow.h"
#include "route/pathfinder_reference.h"

namespace nanomap {
namespace {

class FlowRobustness : public ::testing::TestWithParam<int> {};

TEST_P(FlowRobustness, InvariantsHoldOnRandomDesigns) {
  RandomDagSpec spec;
  spec.num_planes = 1 + GetParam() % 3;
  spec.luts_per_plane = 50 + (GetParam() * 37) % 150;
  spec.depth = 5 + GetParam() % 9;
  spec.regs_per_plane = 4 + GetParam() % 10;
  spec.seed = static_cast<std::uint64_t>(GetParam()) * 7919 + 3;
  Design d = make_random_design(spec);

  FlowOptions opts;
  opts.arch = ArchParams::paper_instance_unbounded_k();
  opts.objective = static_cast<Objective>(GetParam() % 2 == 0
                                              ? 0   // AT product
                                              : 2); // min area
  opts.seed = spec.seed;
  FlowResult r = run_nanomap(d, opts);
  ASSERT_TRUE(r.feasible) << r.message;

  // Routing legal, timing positive, bitmap consistent.
  EXPECT_TRUE(r.routing.success);
  EXPECT_GT(r.delay_ns, 0.0);
  EXPECT_EQ(r.bitmap.num_cycles, r.clustered.num_cycles);
  EXPECT_TRUE(r.bitmap.fits_nram(opts.arch));

  // Area accounting: clustering's LE count is the reported area and fits
  // the SMB capacity; every FDS stage is within it.
  EXPECT_EQ(r.num_les, r.clustered.les_used);
  EXPECT_LE(r.num_les, r.num_smbs * opts.arch.les_per_smb());
  for (const FdsResult& fr : r.plane_schedules) {
    for (std::size_t s = 1; s < fr.le_count.size(); ++s)
      EXPECT_LE(fr.le_count[s], r.num_les + 1);
  }

  // The folding configuration is self-consistent.
  if (!r.folding.no_folding()) {
    EXPECT_EQ(r.folding.stages_per_plane,
              (r.params.depth_max + r.folding.level - 1) / r.folding.level);
  }

  // Clustering invariants (throws on violation).
  EXPECT_NO_THROW(
      verify_clustering(d, r.schedule, opts.arch, r.clustered));
}

INSTANTIATE_TEST_SUITE_P(Sweep, FlowRobustness, ::testing::Range(0, 10));

TEST(FlowRobustness, TinyDesignsMapCleanly) {
  // Degenerate shapes: single LUT, single register loop, two-node chain.
  for (int variant = 0; variant < 3; ++variant) {
    Design d;
    int a = d.net.add_input("a", 0);
    if (variant == 0) {
      d.net.add_output("o", d.net.add_lut("l", {a, a}, 0x6, 0));
    } else if (variant == 1) {
      int ff = d.net.add_flipflop("r", 0);
      int l = d.net.add_lut("l", {ff, a}, 0x6, 0);
      d.net.set_flipflop_input(ff, l);
      d.net.add_output("o", l);
    } else {
      int l1 = d.net.add_lut("l1", {a, a}, 0x8, 0);
      int l2 = d.net.add_lut("l2", {l1, a}, 0x6, 0);
      d.net.add_output("o", l2);
    }
    d.net.compute_levels();
    FlowOptions opts;
    opts.arch = ArchParams::paper_instance();
    FlowResult r = run_nanomap(d, opts);
    ASSERT_TRUE(r.feasible) << "variant " << variant << ": " << r.message;
    EXPECT_TRUE(r.routing.success);
  }
}

TEST(FlowRobustness, WideShallowAndNarrowDeepExtremes) {
  // Wide-shallow: 300 LUTs at depth 2; narrow-deep: 40 LUTs at depth 20.
  RandomDagSpec wide;
  wide.luts_per_plane = 300;
  wide.depth = 2;
  wide.num_inputs = 40;
  wide.seed = 11;
  RandomDagSpec deep;
  deep.luts_per_plane = 40;
  deep.depth = 20;
  deep.seed = 12;
  for (const RandomDagSpec& spec : {wide, deep}) {
    Design d = make_random_design(spec);
    FlowOptions opts;
    opts.arch = ArchParams::paper_instance_unbounded_k();
    FlowResult r = run_nanomap(d, opts);
    ASSERT_TRUE(r.feasible) << r.message;
    EXPECT_TRUE(r.routing.success);
  }
}

// --- recovery-ladder route reuse (DESIGN.md §5g) ---------------------------
//
// The pinned synthetic-congestion cases from the resilient-flow PR must
// keep recovering at the same rung now that the ladder shares an
// incremental RouteState (and an in-place-widened RR graph) across rungs.
// Guarantees under test: the winning rung is unchanged, the diagnostics
// trail records the reused-cycle/net counts, the final routing is
// byte-identical to a cold run of the verbatim seed router on the winning
// rung's fabric + budgets, and the bitmap is thread-count invariant.

// Same spec/fabric as RecoveryLadder.RouterBudgetRungRecoversPinnedCongestionCase
// (tests/fault_injection_test.cc).
FlowOptions pinned_congestion_options(int len1_tracks) {
  FlowOptions opts;
  opts.arch = ArchParams::paper_instance_unbounded_k();
  opts.arch.direct_links_per_side = 4;
  opts.arch.len1_tracks = len1_tracks;
  opts.arch.len4_tracks = 3;
  opts.arch.global_tracks = 2;
  opts.forced_folding_level = 0;   // fallback impossible: the ladder must win
  opts.router.max_iterations = 2;  // default budget: too small to converge
  return opts;
}

Design pinned_congestion_design() {
  RandomDagSpec spec;
  spec.luts_per_plane = 80;
  spec.depth = 5;
  spec.num_inputs = 24;
  spec.seed = 9;
  return make_random_design(spec);
}

void expect_routing_identical(const RoutingResult& got,
                              const RoutingResult& want) {
  EXPECT_EQ(got.success, want.success);
  EXPECT_EQ(got.worst_iterations, want.worst_iterations);
  EXPECT_EQ(got.overused_nodes, want.overused_nodes);
  ASSERT_EQ(got.nets.size(), want.nets.size());
  for (std::size_t i = 0; i < got.nets.size(); ++i) {
    EXPECT_EQ(got.nets[i].net_index, want.nets[i].net_index) << "net " << i;
    EXPECT_EQ(got.nets[i].sink_smbs, want.nets[i].sink_smbs) << "net " << i;
    EXPECT_EQ(got.nets[i].sink_delay_ps, want.nets[i].sink_delay_ps)
        << "net " << i;
    EXPECT_EQ(got.nets[i].wire_nodes, want.nets[i].wire_nodes) << "net " << i;
  }
  EXPECT_EQ(got.usage.direct, want.usage.direct);
  EXPECT_EQ(got.usage.len1, want.usage.len1);
  EXPECT_EQ(got.usage.len4, want.usage.len4);
  EXPECT_EQ(got.usage.global, want.usage.global);
}

// Re-route the flow's winning placement cold with the verbatim seed
// router on the winning rung's fabric and budgets; the shipped routing
// must match byte for byte.
void expect_matches_reference_replay(const FlowResult& r) {
  RrGraph rr(r.placement.placement.grid, r.routed_arch);
  RoutingResult ref = route_nets_reference(r.clustered, r.placement.placement,
                                           rr, r.routed_router);
  expect_routing_identical(r.routing, ref);
}

std::string recovered_route_detail(const FlowResult& r) {
  std::string detail;
  for (const FlowEvent& e : r.diagnostics.events)
    if (e.stage == "route" && e.action == "recovered") detail = e.detail;
  return detail;
}

TEST(RecoveryLadderReuse, BudgetRungPinnedCaseReplaysAndRecordsReuse) {
  Design d = pinned_congestion_design();
  FlowOptions opts = pinned_congestion_options(/*len1_tracks=*/6);

  opts.threads = 1;
  FlowResult r = run_nanomap(d, opts);
  ASSERT_TRUE(r.feasible) << r.message << "\n" << r.diagnostics.to_string();
  EXPECT_TRUE(r.routing.success);

  // Same rung as before the incremental kernel: rung 1, raised budgets,
  // no channel widening (the winning fabric is the input fabric).
  const std::string detail = recovered_route_detail(r);
  ASSERT_FALSE(detail.empty()) << r.diagnostics.to_string();
  EXPECT_NE(detail.find("rung 1"), std::string::npos) << detail;
  EXPECT_NE(detail.find("raised router budgets"), std::string::npos) << detail;
  EXPECT_EQ(r.routed_arch.len1_tracks, opts.arch.len1_tracks);
  EXPECT_EQ(r.routed_arch.len4_tracks, opts.arch.len4_tracks);

  // The trail records how much the winning rung reused.
  EXPECT_NE(detail.find("reused"), std::string::npos) << detail;
  EXPECT_NE(detail.find("repeat searches"), std::string::npos) << detail;

  expect_matches_reference_replay(r);

  opts.threads = 4;
  FlowResult parallel = run_nanomap(d, opts);
  EXPECT_EQ(r.diagnostics.to_string(), parallel.diagnostics.to_string());
  EXPECT_EQ(serialize_bitmap(r.bitmap), serialize_bitmap(parallel.bitmap));
}

TEST(RecoveryLadderReuse, ChannelBumpPinnedCaseReplaysOnWidenedFabric) {
  Design d = pinned_congestion_design();
  FlowOptions opts = pinned_congestion_options(/*len1_tracks=*/4);

  opts.threads = 1;
  FlowResult r = run_nanomap(d, opts);
  ASSERT_TRUE(r.feasible) << r.message << "\n" << r.diagnostics.to_string();
  EXPECT_TRUE(r.routing.success);

  const std::string detail = recovered_route_detail(r);
  ASSERT_FALSE(detail.empty()) << r.diagnostics.to_string();
  EXPECT_NE(detail.find("widened channels"), std::string::npos) << detail;
  EXPECT_NE(detail.find("reused"), std::string::npos) << detail;

  // The winning fabric really is a widened copy — and the replay cross-
  // check below rebuilds the RR graph from it, proving FlowResult carries
  // everything needed to reproduce the routing.
  EXPECT_GT(r.routed_arch.len1_tracks, opts.arch.len1_tracks);

  expect_matches_reference_replay(r);

  opts.threads = 4;
  FlowResult parallel = run_nanomap(d, opts);
  EXPECT_EQ(r.diagnostics.to_string(), parallel.diagnostics.to_string());
  EXPECT_EQ(serialize_bitmap(r.bitmap), serialize_bitmap(parallel.bitmap));
}

}  // namespace
}  // namespace nanomap
