// End-to-end robustness: the full physical flow over randomly generated
// sequential designs of varying shape, checking the invariants that must
// hold for *any* input — not just the paper benchmarks.
#include <gtest/gtest.h>

#include "circuits/random_dag.h"
#include "flow/nanomap_flow.h"

namespace nanomap {
namespace {

class FlowRobustness : public ::testing::TestWithParam<int> {};

TEST_P(FlowRobustness, InvariantsHoldOnRandomDesigns) {
  RandomDagSpec spec;
  spec.num_planes = 1 + GetParam() % 3;
  spec.luts_per_plane = 50 + (GetParam() * 37) % 150;
  spec.depth = 5 + GetParam() % 9;
  spec.regs_per_plane = 4 + GetParam() % 10;
  spec.seed = static_cast<std::uint64_t>(GetParam()) * 7919 + 3;
  Design d = make_random_design(spec);

  FlowOptions opts;
  opts.arch = ArchParams::paper_instance_unbounded_k();
  opts.objective = static_cast<Objective>(GetParam() % 2 == 0
                                              ? 0   // AT product
                                              : 2); // min area
  opts.seed = spec.seed;
  FlowResult r = run_nanomap(d, opts);
  ASSERT_TRUE(r.feasible) << r.message;

  // Routing legal, timing positive, bitmap consistent.
  EXPECT_TRUE(r.routing.success);
  EXPECT_GT(r.delay_ns, 0.0);
  EXPECT_EQ(r.bitmap.num_cycles, r.clustered.num_cycles);
  EXPECT_TRUE(r.bitmap.fits_nram(opts.arch));

  // Area accounting: clustering's LE count is the reported area and fits
  // the SMB capacity; every FDS stage is within it.
  EXPECT_EQ(r.num_les, r.clustered.les_used);
  EXPECT_LE(r.num_les, r.num_smbs * opts.arch.les_per_smb());
  for (const FdsResult& fr : r.plane_schedules) {
    for (std::size_t s = 1; s < fr.le_count.size(); ++s)
      EXPECT_LE(fr.le_count[s], r.num_les + 1);
  }

  // The folding configuration is self-consistent.
  if (!r.folding.no_folding()) {
    EXPECT_EQ(r.folding.stages_per_plane,
              (r.params.depth_max + r.folding.level - 1) / r.folding.level);
  }

  // Clustering invariants (throws on violation).
  EXPECT_NO_THROW(
      verify_clustering(d, r.schedule, opts.arch, r.clustered));
}

INSTANTIATE_TEST_SUITE_P(Sweep, FlowRobustness, ::testing::Range(0, 10));

TEST(FlowRobustness, TinyDesignsMapCleanly) {
  // Degenerate shapes: single LUT, single register loop, two-node chain.
  for (int variant = 0; variant < 3; ++variant) {
    Design d;
    int a = d.net.add_input("a", 0);
    if (variant == 0) {
      d.net.add_output("o", d.net.add_lut("l", {a, a}, 0x6, 0));
    } else if (variant == 1) {
      int ff = d.net.add_flipflop("r", 0);
      int l = d.net.add_lut("l", {ff, a}, 0x6, 0);
      d.net.set_flipflop_input(ff, l);
      d.net.add_output("o", l);
    } else {
      int l1 = d.net.add_lut("l1", {a, a}, 0x8, 0);
      int l2 = d.net.add_lut("l2", {l1, a}, 0x6, 0);
      d.net.add_output("o", l2);
    }
    d.net.compute_levels();
    FlowOptions opts;
    opts.arch = ArchParams::paper_instance();
    FlowResult r = run_nanomap(d, opts);
    ASSERT_TRUE(r.feasible) << "variant " << variant << ": " << r.message;
    EXPECT_TRUE(r.routing.success);
  }
}

TEST(FlowRobustness, WideShallowAndNarrowDeepExtremes) {
  // Wide-shallow: 300 LUTs at depth 2; narrow-deep: 40 LUTs at depth 20.
  RandomDagSpec wide;
  wide.luts_per_plane = 300;
  wide.depth = 2;
  wide.num_inputs = 40;
  wide.seed = 11;
  RandomDagSpec deep;
  deep.luts_per_plane = 40;
  deep.depth = 20;
  deep.seed = 12;
  for (const RandomDagSpec& spec : {wide, deep}) {
    Design d = make_random_design(spec);
    FlowOptions opts;
    opts.arch = ArchParams::paper_instance_unbounded_k();
    FlowResult r = run_nanomap(d, opts);
    ASSERT_TRUE(r.feasible) << r.message;
    EXPECT_TRUE(r.routing.success);
  }
}

}  // namespace
}  // namespace nanomap
