#include <gtest/gtest.h>

#include "bitstream/emulator.h"
#include "circuits/extra.h"
#include "flow/nanomap_flow.h"
#include "netlist/plane.h"
#include "netlist/simulate.h"
#include "util/rng.h"

namespace nanomap {
namespace {

class ExtraCircuits : public ::testing::TestWithParam<std::string> {};

TEST_P(ExtraCircuits, ValidAndMapsEndToEnd) {
  Design d = make_extra_benchmark(GetParam());
  EXPECT_NO_THROW(d.net.validate());
  FlowOptions opts;
  opts.arch = ArchParams::paper_instance_unbounded_k();
  opts.objective = Objective::kAreaDelayProduct;
  FlowResult r = run_nanomap(d, opts);
  ASSERT_TRUE(r.feasible) << GetParam() << ": " << r.message;
  EXPECT_TRUE(r.routing.success);
  EXPECT_GT(r.num_les, 0);
}

TEST_P(ExtraCircuits, FoldedExecutionEquivalent) {
  Design d = make_extra_benchmark(GetParam());
  CircuitParams p = extract_circuit_params(d.net);
  ArchParams arch = ArchParams::paper_instance_unbounded_k();
  DesignSchedule sched;
  sched.folding = make_folding_config(p, 2);
  sched.planes_share = true;
  for (int plane = 0; plane < p.num_plane; ++plane) {
    PlaneScheduleGraph g = build_schedule_graph(d, plane, sched.folding);
    sched.plane_results.push_back(schedule_plane(g, arch));
    sched.graphs.push_back(std::move(g));
  }
  ClusteredDesign cd = temporal_cluster(d, sched, arch);

  Simulator golden(d.net);
  FoldedEmulator folded(d, sched, cd);
  golden.reset(false);
  folded.reset(false);
  std::vector<int> inputs;
  for (int id = 0; id < d.net.size(); ++id)
    if (d.net.node(id).kind == NodeKind::kInput) inputs.push_back(id);
  Rng rng(5);
  for (int s = 0; s < 6; ++s) {
    for (int pi : inputs) {
      bool v = rng.next_bool();
      golden.set_input(pi, v);
      folded.set_input(pi, v);
    }
    golden.step();
    folded.run_pass();
    golden.evaluate();
    for (int id = 0; id < d.net.size(); ++id) {
      if (d.net.node(id).kind == NodeKind::kFlipFlop) {
        ASSERT_EQ(folded.value(id), golden.value(id))
            << GetParam() << " step " << s;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(All, ExtraCircuits,
                         ::testing::ValuesIn(extra_benchmark_names()));

TEST(ExtraCircuits, CrcIsShallowAndRegisterDominated) {
  Design d = make_crc();
  CircuitParams p = extract_circuit_params(d.net);
  EXPECT_LE(p.depth_max, 3);
  EXPECT_GE(p.total_flipflops, 32);
}

TEST(ExtraCircuits, SystolicHasOnePlanePerCell) {
  Design d = make_systolic(5, 6);
  EXPECT_EQ(d.net.num_planes(), 5);
}

TEST(ExtraCircuits, ConvolveSaturates) {
  Design d = make_convolve3(8);
  Simulator sim(d.net);
  sim.reset(false);
  std::vector<int> x, limit, k0;
  for (int id = 0; id < d.net.size(); ++id) {
    const LutNode& n = d.net.node(id);
    if (n.kind != NodeKind::kInput) continue;
    if (n.name.rfind("x[", 0) == 0) x.push_back(id);
    if (n.name.rfind("limit[", 0) == 0) limit.push_back(id);
    if (n.name.rfind("k0[", 0) == 0) k0.push_back(id);
  }
  // x=10 through tap 0 with k0=20 -> sum 200 saturates at limit 100.
  sim.set_input_bus(x, 10);
  sim.set_input_bus(k0, 20);
  sim.set_input_bus(limit, 100);
  sim.step();  // x into d0
  sim.step();  // product/sat into y
  sim.evaluate();
  std::vector<int> y;
  for (int id = 0; id < d.net.size(); ++id)
    if (d.net.node(id).kind == NodeKind::kOutput) y.push_back(id);
  EXPECT_EQ(sim.read_bus(y), 100u);
}

}  // namespace
}  // namespace nanomap
