#include <gtest/gtest.h>

#include "circuits/benchmarks.h"
#include "netlist/simulate.h"
#include "rtl/blif.h"
#include "util/rng.h"

namespace nanomap {
namespace {

TEST(Blif, ParsesMinimalCombinational) {
  Design d = parse_blif(R"(
.model tiny
.inputs a b
.outputs y
.names a b y
11 1
.end
)");
  EXPECT_EQ(d.name, "tiny");
  EXPECT_EQ(d.net.num_inputs(), 2);
  EXPECT_EQ(d.net.num_luts(), 1);
  EXPECT_EQ(d.net.num_outputs(), 1);
  Simulator sim(d.net);
  sim.set_input(0, true);
  sim.set_input(1, true);
  sim.evaluate();
  EXPECT_TRUE(sim.value(2));
  sim.set_input(1, false);
  sim.evaluate();
  EXPECT_FALSE(sim.value(2));
}

TEST(Blif, DontCareCubes) {
  Design d = parse_blif(R"(
.model dc
.inputs a b c
.outputs y
.names a b c y
1-- 1
-11 1
.end
)");
  // y = a | (b & c)
  Simulator sim(d.net);
  for (int m = 0; m < 8; ++m) {
    sim.set_input(0, m & 1);
    sim.set_input(1, m & 2);
    sim.set_input(2, m & 4);
    sim.evaluate();
    bool expect = (m & 1) || ((m & 2) && (m & 4));
    EXPECT_EQ(sim.value(3), expect) << m;
  }
}

TEST(Blif, OffSetCoverComplemented) {
  Design d = parse_blif(R"(
.model off
.inputs a b
.outputs y
.names a b y
11 0
.end
)");
  // OFF-set {11} -> y = NAND(a, b)
  Simulator sim(d.net);
  sim.set_input(0, true);
  sim.set_input(1, true);
  sim.evaluate();
  EXPECT_FALSE(sim.value(2));
  sim.set_input(1, false);
  sim.evaluate();
  EXPECT_TRUE(sim.value(2));
}

TEST(Blif, LatchesMakeSequentialDesign) {
  Design d = parse_blif(R"(
.model seq
.inputs x
.outputs q
.names x d
1 1
.latch d q 0
.end
)");
  EXPECT_EQ(d.net.num_flipflops(), 1);
  Simulator sim(d.net);
  sim.reset(false);
  sim.set_input(0, true);
  sim.step();
  sim.evaluate();
  // q holds x after one clock.
  int q = -1;
  for (int id = 0; id < d.net.size(); ++id)
    if (d.net.node(id).kind == NodeKind::kFlipFlop) q = id;
  EXPECT_TRUE(sim.value(q));
}

TEST(Blif, OutOfOrderNamesBlocksResolve) {
  Design d = parse_blif(R"(
.model order
.inputs a b
.outputs y
.names t a y
11 1
.names a b t
10 1
.end
)");
  EXPECT_EQ(d.net.num_luts(), 2);
}

TEST(Blif, ConstantFunctions) {
  Design d = parse_blif(R"(
.model consts
.inputs a
.outputs one zero
.names one
1
.names zero
.end
)");
  Simulator sim(d.net);
  sim.set_input(0, false);
  sim.evaluate();
  int one = -1, zero = -1;
  for (int id = 0; id < d.net.size(); ++id) {
    if (d.net.node(id).kind == NodeKind::kLut) {
      if (d.net.node(id).name == "one") one = id;
      if (d.net.node(id).name == "zero") zero = id;
    }
  }
  ASSERT_GE(one, 0);
  ASSERT_GE(zero, 0);
  EXPECT_TRUE(sim.value(one));
  EXPECT_FALSE(sim.value(zero));
}

TEST(Blif, LineContinuations) {
  Design d = parse_blif(
      ".model cont\n.inputs a \\\nb\n.outputs y\n.names a b y\n11 1\n.end\n");
  EXPECT_EQ(d.net.num_inputs(), 2);
}

TEST(Blif, CommentsStripped) {
  Design d = parse_blif(R"(
# full-line comment
.model c  # trailing comment
.inputs a
.outputs y
.names a y   # buffer
1 1
.end
)");
  EXPECT_EQ(d.net.num_luts(), 1);
}

TEST(BlifErrors, Diagnostics) {
  EXPECT_THROW(parse_blif(".inputs a\n"), InputError);          // no .model
  EXPECT_THROW(parse_blif(".model m\n.frob x\n"), InputError);  // directive
  EXPECT_THROW(parse_blif(R"(
.model m
.inputs a
.outputs y
.names a nosuch y
11 1
.end
)"),
               InputError);  // undefined fanin
  EXPECT_THROW(parse_blif(R"(
.model m
.inputs a b
.outputs y
.names a b y
11 1
00 0
.end
)"),
               InputError);  // mixed polarity
  EXPECT_THROW(parse_blif(R"(
.model m
.inputs a b
.outputs y
.names a b y
111 1
.end
)"),
               InputError);  // cube width
}

TEST(Blif, CombinationalCycleRejected) {
  EXPECT_THROW(parse_blif(R"(
.model cyc
.inputs a
.outputs y
.names a u y
11 1
.names a y u
11 1
.end
)"),
               InputError);
}

TEST(Blif, RoundTripPreservesFunction) {
  Design original = make_ex1(4);
  std::string text = write_blif(original);
  Design reparsed = parse_blif(text);
  // Output aliases become buffer LUTs in BLIF, so the reparsed netlist may
  // gain up to one LUT per primary output.
  EXPECT_GE(reparsed.net.num_luts(), original.net.num_luts());
  EXPECT_LE(reparsed.net.num_luts(),
            original.net.num_luts() + original.net.num_outputs());
  EXPECT_EQ(reparsed.net.num_flipflops(), original.net.num_flipflops());
  EXPECT_EQ(reparsed.net.num_inputs(), original.net.num_inputs());
  EXPECT_EQ(reparsed.net.num_outputs(), original.net.num_outputs());

  // Same outputs for random input sequences (both are sequential).
  Simulator a(original.net), b(reparsed.net);
  a.reset(false);
  b.reset(false);
  std::vector<int> ia, ib, oa, ob;
  for (int id = 0; id < original.net.size(); ++id) {
    if (original.net.node(id).kind == NodeKind::kInput) ia.push_back(id);
    if (original.net.node(id).kind == NodeKind::kOutput) oa.push_back(id);
  }
  for (int id = 0; id < reparsed.net.size(); ++id) {
    if (reparsed.net.node(id).kind == NodeKind::kInput) ib.push_back(id);
    if (reparsed.net.node(id).kind == NodeKind::kOutput) ob.push_back(id);
  }
  ASSERT_EQ(ia.size(), ib.size());
  ASSERT_EQ(oa.size(), ob.size());
  Rng rng(5);
  for (int s = 0; s < 10; ++s) {
    std::uint64_t v = rng.next_u64();
    a.set_input_bus(ia, v);
    b.set_input_bus(ib, v);
    a.step();
    b.step();
    a.evaluate();
    b.evaluate();
    for (std::size_t i = 0; i < oa.size(); ++i)
      ASSERT_EQ(a.value(oa[i]), b.value(ob[i])) << "step " << s;
  }
}

TEST(Blif, WriterEmitsValidStructure) {
  Design d = make_fir(2, 4);
  std::string text = write_blif(d);
  EXPECT_NE(text.find(".model FIR"), std::string::npos);
  EXPECT_NE(text.find(".latch"), std::string::npos);
  EXPECT_NE(text.find(".end"), std::string::npos);
}

}  // namespace
}  // namespace nanomap
