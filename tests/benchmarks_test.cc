// Structural checks that the benchmark generators reproduce the paper's
// Table 1 circuit parameters within tolerance (they are reconstructions;
// see DESIGN.md §2).
#include <gtest/gtest.h>

#include "circuits/benchmarks.h"
#include "circuits/random_dag.h"
#include "netlist/plane.h"
#include "netlist/simulate.h"

namespace nanomap {
namespace {

class BenchmarkStructure : public ::testing::TestWithParam<std::string> {};

TEST_P(BenchmarkStructure, ValidNetwork) {
  Design d = make_benchmark(GetParam());
  EXPECT_NO_THROW(d.net.validate());
  EXPECT_EQ(d.name, GetParam());
}

TEST_P(BenchmarkStructure, PlaneCountMatchesPaperExactly) {
  Design d = make_benchmark(GetParam());
  EXPECT_EQ(d.net.num_planes(), paper_row(GetParam()).planes);
}

TEST_P(BenchmarkStructure, LutCountWithinThirtyPercentOfPaper) {
  Design d = make_benchmark(GetParam());
  CircuitParams p = extract_circuit_params(d.net);
  const PaperCircuitRow& row = paper_row(GetParam());
  EXPECT_GE(p.total_luts, row.luts * 7 / 10) << GetParam();
  EXPECT_LE(p.total_luts, row.luts * 13 / 10) << GetParam();
}

TEST_P(BenchmarkStructure, DepthSameOrderAsPaper) {
  Design d = make_benchmark(GetParam());
  CircuitParams p = extract_circuit_params(d.net);
  const PaperCircuitRow& row = paper_row(GetParam());
  EXPECT_GE(p.depth_max, row.max_depth / 2) << GetParam();
  EXPECT_LE(p.depth_max, row.max_depth * 2) << GetParam();
}

TEST_P(BenchmarkStructure, DeterministicConstruction) {
  Design d1 = make_benchmark(GetParam());
  Design d2 = make_benchmark(GetParam());
  ASSERT_EQ(d1.net.size(), d2.net.size());
  for (int i = 0; i < d1.net.size(); ++i) {
    EXPECT_EQ(d1.net.node(i).truth, d2.net.node(i).truth);
    EXPECT_EQ(d1.net.node(i).fanins, d2.net.node(i).fanins);
  }
}

INSTANTIATE_TEST_SUITE_P(All, BenchmarkStructure,
                         ::testing::ValuesIn(benchmark_names()));

TEST(Benchmarks, Ex1FlipFlopCountMatchesPaperExactly) {
  // 3 x 16-bit registers + 2 state FFs = 50, as in Table 1.
  Design d = make_ex1();
  EXPECT_EQ(d.net.num_flipflops(), 50);
}

TEST(Benchmarks, Ex1MotivationalHasAdderAndMultiplier) {
  Design d = make_ex1_motivational();
  ASSERT_EQ(d.modules.size(), 2u);
  EXPECT_EQ(d.module(0).type, ModuleType::kAdder);
  EXPECT_EQ(d.module(1).type, ModuleType::kMultiplier);
  // Paper §3: adder 8 LUTs depth 4.
  EXPECT_EQ(d.module(0).num_luts, 8);
  EXPECT_EQ(d.module(0).depth, 4);
  EXPECT_EQ(d.net.num_flipflops(), 14);
}

TEST(Benchmarks, C5315IsPurelyCombinational) {
  Design d = make_c5315();
  EXPECT_EQ(d.net.num_flipflops(), 0);
  EXPECT_EQ(d.net.num_planes(), 1);
}

TEST(Benchmarks, FirDatapathComputesConvolutionStep) {
  // Drive the FIR with an impulse and check tap propagation through the
  // registered delay line (coefficients hold 0 -> output stays 0).
  Design d = make_fir(3, 6);
  Simulator sim(d.net);
  sim.reset(false);
  std::vector<int> x_bus;
  for (int id = 0; id < d.net.size(); ++id) {
    const LutNode& n = d.net.node(id);
    if (n.kind == NodeKind::kInput) {
      x_bus.push_back(id);
    }
  }
  sim.set_input_bus(x_bus, 5);
  for (int c = 0; c < 4; ++c) sim.step();
  sim.evaluate();
  // With all coefficients 0, every product and thus y must be 0.
  for (int id = 0; id < d.net.size(); ++id) {
    if (d.net.node(id).kind == NodeKind::kOutput) {
      EXPECT_FALSE(sim.value(id));
    }
  }
}

TEST(Benchmarks, Ex2HasThreeConnectedPlanes) {
  Design d = make_ex2(8);
  CircuitParams p = extract_circuit_params(d.net);
  EXPECT_EQ(p.num_plane, 3);
  for (int plane = 0; plane < 3; ++plane) {
    EXPECT_GT(p.num_lut[static_cast<std::size_t>(plane)], 0);
    EXPECT_GT(p.num_regs[static_cast<std::size_t>(plane)], 0);
  }
}

TEST(Benchmarks, UnknownNameThrows) {
  EXPECT_THROW(make_benchmark("nope"), InputError);
  EXPECT_THROW(paper_row("nope"), InputError);
}

TEST(RandomDag, SpecRespected) {
  RandomDagSpec spec;
  spec.num_planes = 2;
  spec.luts_per_plane = 40;
  spec.depth = 6;
  spec.seed = 3;
  Design d = make_random_design(spec);
  CircuitParams p = extract_circuit_params(d.net);
  EXPECT_EQ(p.num_plane, 2);
  EXPECT_EQ(p.num_lut[0], 40);
  EXPECT_EQ(p.num_lut[1], 40);
  EXPECT_EQ(p.depth[0], 6);
  EXPECT_EQ(p.depth[1], 6);
  EXPECT_NO_THROW(d.net.validate());
}

TEST(RandomDag, DeterministicBySeed) {
  RandomDagSpec spec;
  spec.seed = 77;
  Design a = make_random_design(spec);
  Design b = make_random_design(spec);
  ASSERT_EQ(a.net.size(), b.net.size());
  for (int i = 0; i < a.net.size(); ++i)
    EXPECT_EQ(a.net.node(i).fanins, b.net.node(i).fanins);
  spec.seed = 78;
  Design c = make_random_design(spec);
  bool different = c.net.size() != a.net.size();
  for (int i = 0; !different && i < a.net.size(); ++i)
    different = a.net.node(i).fanins != c.net.node(i).fanins;
  EXPECT_TRUE(different);
}

TEST(RandomDag, GateGeneratorProducesValidNetwork) {
  GateNetwork g = make_random_gates(8, 100, 4, 11);
  EXPECT_NO_THROW(g.validate());
  EXPECT_EQ(g.num_inputs(), 8);
  EXPECT_EQ(g.num_outputs(), 4);
  EXPECT_GT(g.depth(), 2);
}

}  // namespace
}  // namespace nanomap
