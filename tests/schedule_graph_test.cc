#include <gtest/gtest.h>

#include "circuits/benchmarks.h"
#include "core/schedule_graph.h"
#include "netlist/plane.h"
#include "rtl/module_expander.h"

namespace nanomap {
namespace {

// plane 0: in -> adder(4) -> two loose LUTs chained after it.
Design chain_design() {
  Design d;
  SignalBus a = add_input_bus(d, "a", 4, 0);
  SignalBus b = add_input_bus(d, "b", 4, 0);
  ExpandedModule add = expand_adder(d, "add", a, b, 0);
  int l1 = d.net.add_lut("l1", {add.out[3], a[0]}, 0x6, 0);
  int l2 = d.net.add_lut("l2", {l1, b[0]}, 0x6, 0);
  d.net.add_output("o", l2);
  d.net.compute_levels();
  d.refresh_module_stats();
  return d;
}

TEST(ScheduleGraph, ModuleSlicedByAbsoluteDepthWindows) {
  Design d = chain_design();  // adder depth 4, total depth 6
  CircuitParams p = extract_circuit_params(d.net);
  EXPECT_EQ(p.depth_max, 6);
  FoldingConfig cfg = make_folding_config(p, 2);  // 3 stages
  PlaneScheduleGraph g = build_schedule_graph(d, 0, cfg);
  ASSERT_TRUE(g.feasible);
  // Adder (depth 4) splits into 2 window slices; l1/l2 are loose nodes.
  int clusters = 0, loose = 0;
  for (const ScheduleNode& n : g.nodes) {
    if (n.is_cluster) ++clusters;
    else ++loose;
    EXPECT_LE(n.level_end - (n.slice - 1) * 2, 2);  // fits its window
  }
  EXPECT_EQ(clusters, 2);
  EXPECT_EQ(loose, 2);
}

TEST(ScheduleGraph, WeightsSumToPlaneLuts) {
  Design d = make_ex1(8);
  CircuitParams p = extract_circuit_params(d.net);
  for (int level : {1, 2, 3, 5}) {
    FoldingConfig cfg = make_folding_config(p, level);
    PlaneScheduleGraph g = build_schedule_graph(d, 0, cfg);
    int total = 0;
    for (const ScheduleNode& n : g.nodes) {
      total += n.weight;
      EXPECT_EQ(static_cast<int>(n.luts.size()), n.weight);
    }
    EXPECT_EQ(total, p.num_lut[0]) << "level " << level;
  }
}

TEST(ScheduleGraph, EdgesFollowLutDependencies) {
  Design d = chain_design();
  CircuitParams p = extract_circuit_params(d.net);
  PlaneScheduleGraph g = build_schedule_graph(d, 0, make_folding_config(p, 2));
  // Find l2's node: it must have a pred (l1's node).
  for (const ScheduleNode& n : g.nodes) {
    if (n.debug_name == "l2") {
      ASSERT_EQ(n.preds.size(), 1u);
      EXPECT_EQ(g.nodes[static_cast<std::size_t>(n.preds[0])].debug_name,
                "l1");
    }
  }
}

TEST(ScheduleGraph, GapZeroWithinSlice) {
  Design d = chain_design();
  CircuitParams p = extract_circuit_params(d.net);
  PlaneScheduleGraph g = build_schedule_graph(d, 0, make_folding_config(p, 6));
  // level 6 = whole plane in one window: all gaps 0.
  for (const ScheduleNode& n : g.nodes) {
    EXPECT_EQ(n.slice, 1);
    for (int s : n.succs) EXPECT_EQ(schedule_gap(g, n.id, s), 0);
  }
}

TEST(TimeFrames, UnpinnedGraphAlwaysFeasible) {
  for (const char* name : {"ex1", "FIR", "Biquad"}) {
    Design d = make_benchmark(name);
    CircuitParams p = extract_circuit_params(d.net);
    for (int level : {1, 2, 3, 4, 7}) {
      FoldingConfig cfg = make_folding_config(p, level);
      for (int plane = 0; plane < p.num_plane; ++plane) {
        PlaneScheduleGraph g = build_schedule_graph(d, plane, cfg);
        ASSERT_TRUE(g.feasible) << name << " L" << level;
        std::vector<int> unpinned(g.nodes.size(), 0);
        TimeFrames tf = compute_time_frames(g, unpinned);
        EXPECT_TRUE(tf.feasible) << name << " L" << level;
        for (const ScheduleNode& n : g.nodes) {
          EXPECT_LE(tf.asap[static_cast<std::size_t>(n.id)],
                    tf.alap[static_cast<std::size_t>(n.id)]);
          EXPECT_GE(tf.asap[static_cast<std::size_t>(n.id)], 1);
          EXPECT_LE(tf.alap[static_cast<std::size_t>(n.id)], g.num_stages);
        }
      }
    }
  }
}

TEST(TimeFrames, AsapRespectsGaps) {
  Design d = chain_design();
  CircuitParams p = extract_circuit_params(d.net);
  PlaneScheduleGraph g = build_schedule_graph(d, 0, make_folding_config(p, 2));
  std::vector<int> unpinned(g.nodes.size(), 0);
  TimeFrames tf = compute_time_frames(g, unpinned);
  ASSERT_TRUE(tf.feasible);
  for (const ScheduleNode& n : g.nodes) {
    for (int s : n.succs) {
      EXPECT_GE(tf.asap[static_cast<std::size_t>(s)],
                tf.asap[static_cast<std::size_t>(n.id)] +
                    schedule_gap(g, n.id, s));
    }
  }
}

TEST(TimeFrames, PinNarrowsNeighbours) {
  Design d = chain_design();
  CircuitParams p = extract_circuit_params(d.net);
  PlaneScheduleGraph g = build_schedule_graph(d, 0, make_folding_config(p, 2));
  // Pin l1 (slice 3 loose LUT) and check l2's ASAP follows.
  int l1 = -1, l2 = -1;
  for (const ScheduleNode& n : g.nodes) {
    if (n.debug_name == "l1") l1 = n.id;
    if (n.debug_name == "l2") l2 = n.id;
  }
  ASSERT_GE(l1, 0);
  std::vector<int> pins(g.nodes.size(), 0);
  pins[static_cast<std::size_t>(l1)] = 3;
  TimeFrames tf = compute_time_frames(g, pins);
  ASSERT_TRUE(tf.feasible);
  EXPECT_EQ(tf.asap[static_cast<std::size_t>(l1)], 3);
  EXPECT_EQ(tf.alap[static_cast<std::size_t>(l1)], 3);
  EXPECT_GE(tf.asap[static_cast<std::size_t>(l2)], 3);
}

TEST(TimeFrames, ImpossiblePinFlagsInfeasible) {
  Design d = chain_design();
  CircuitParams p = extract_circuit_params(d.net);
  PlaneScheduleGraph g = build_schedule_graph(d, 0, make_folding_config(p, 2));
  // Pin the deepest loose LUT to stage 1 while its chain needs later
  // stages (adder slice 2 ends at level 4 -> l1 at level 5 -> slice 3).
  int l2 = -1;
  for (const ScheduleNode& n : g.nodes)
    if (n.debug_name == "l2") l2 = n.id;
  std::vector<int> pins(g.nodes.size(), 0);
  pins[static_cast<std::size_t>(l2)] = 1;
  TimeFrames tf = compute_time_frames(g, pins);
  EXPECT_FALSE(tf.feasible);
}

TEST(ScheduleGraph, StoredOutputsDetected) {
  Design d = chain_design();
  CircuitParams p = extract_circuit_params(d.net);
  PlaneScheduleGraph g = build_schedule_graph(d, 0, make_folding_config(p, 2));
  // The adder's top slice feeds l1 (outside node) -> stored outputs > 0,
  // and every primary-output-feeding node is anchored.
  bool found_stored = false;
  for (const ScheduleNode& n : g.nodes) {
    if (n.is_cluster && n.num_stored_outputs > 0) found_stored = true;
    if (n.debug_name == "l2") {
      EXPECT_TRUE(n.feeds_flipflop);
    }
  }
  EXPECT_TRUE(found_stored);
}

TEST(ScheduleGraph, NoFoldingSingleStage) {
  Design d = make_ex1(4);
  CircuitParams p = extract_circuit_params(d.net);
  FoldingConfig cfg = make_folding_config(p, 0);
  PlaneScheduleGraph g = build_schedule_graph(d, 0, cfg);
  EXPECT_TRUE(g.feasible);
  EXPECT_EQ(g.num_stages, 1);
  std::vector<int> unpinned(g.nodes.size(), 0);
  TimeFrames tf = compute_time_frames(g, unpinned);
  EXPECT_TRUE(tf.feasible);
  for (const ScheduleNode& n : g.nodes) {
    EXPECT_EQ(tf.asap[static_cast<std::size_t>(n.id)], 1);
    EXPECT_EQ(tf.alap[static_cast<std::size_t>(n.id)], 1);
  }
}

TEST(ScheduleGraph, NodeOfLutConsistent) {
  Design d = make_ex1(6);
  CircuitParams p = extract_circuit_params(d.net);
  PlaneScheduleGraph g = build_schedule_graph(d, 0, make_folding_config(p, 2));
  for (const ScheduleNode& n : g.nodes) {
    for (int lut : n.luts) {
      EXPECT_EQ(g.node_of_lut[static_cast<std::size_t>(lut)], n.id);
    }
  }
}

}  // namespace
}  // namespace nanomap
