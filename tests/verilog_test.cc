#include <gtest/gtest.h>

#include "netlist/simulate.h"
#include "rtl/verilog.h"
#include "util/rng.h"

namespace nanomap {
namespace {

std::vector<int> bus_of(const Design& d, const std::string& prefix,
                        NodeKind kind) {
  std::vector<int> out;
  for (int id = 0; id < d.net.size(); ++id) {
    const LutNode& n = d.net.node(id);
    if (n.kind == kind && n.name.rfind(prefix + "[", 0) == 0)
      out.push_back(id);
  }
  return out;
}

const char* kMacVerilog = R"(
// 8-bit multiply-accumulate
module mac(clk, x, w, r);
  input clk;
  input [7:0] x, w;
  output [7:0] r;
  wire [7:0] p, nxt;
  reg [7:0] acc;
  assign p = x * w;
  assign nxt = p + acc;
  always @(posedge clk) acc <= nxt;
  assign r = acc;
endmodule
)";

TEST(Verilog, MacStructure) {
  Design d = parse_verilog(kMacVerilog);
  EXPECT_EQ(d.name, "mac");
  EXPECT_EQ(d.net.num_flipflops(), 8);
  ASSERT_EQ(d.modules.size(), 2u);
  EXPECT_EQ(d.module(0).type, ModuleType::kMultiplier);
  EXPECT_EQ(d.module(1).type, ModuleType::kAdder);
}

TEST(Verilog, MacComputes) {
  Design d = parse_verilog(kMacVerilog);
  Simulator sim(d.net);
  sim.reset(false);
  std::vector<int> x = bus_of(d, "x", NodeKind::kInput);
  std::vector<int> w = bus_of(d, "w", NodeKind::kInput);
  std::vector<int> acc = bus_of(d, "acc", NodeKind::kFlipFlop);
  unsigned expect = 0;
  Rng rng(9);
  for (int s = 0; s < 8; ++s) {
    unsigned xv = static_cast<unsigned>(rng.next_below(256));
    unsigned wv = static_cast<unsigned>(rng.next_below(256));
    sim.set_input_bus(x, xv);
    sim.set_input_bus(w, wv);
    sim.step();
    sim.evaluate();
    expect = (expect + xv * wv) & 0xff;
    EXPECT_EQ(sim.read_bus(acc), expect) << s;
  }
}

TEST(Verilog, TernaryAndBitwise) {
  Design d = parse_verilog(R"(
module sel(s, a, b, y, z);
  input s;
  input [3:0] a, b;
  output [3:0] y, z;
  assign y = s ? a : b;
  assign z = a ^ b;
endmodule
)");
  Simulator sim(d.net);
  std::vector<int> a = bus_of(d, "a", NodeKind::kInput);
  std::vector<int> b = bus_of(d, "b", NodeKind::kInput);
  int s = -1;
  for (int id = 0; id < d.net.size(); ++id)
    if (d.net.node(id).kind == NodeKind::kInput &&
        d.net.node(id).name.rfind("s[", 0) == 0)
      s = id;
  sim.set_input_bus(a, 0x9);
  sim.set_input_bus(b, 0x6);
  sim.set_input(s, true);
  sim.evaluate();
  EXPECT_EQ(sim.read_bus(bus_of(d, "y", NodeKind::kOutput)), 0x9u);
  EXPECT_EQ(sim.read_bus(bus_of(d, "z", NodeKind::kOutput)), 0xFu);
  sim.set_input(s, false);
  sim.evaluate();
  EXPECT_EQ(sim.read_bus(bus_of(d, "y", NodeKind::kOutput)), 0x6u);
}

TEST(Verilog, GatePrimitivesNaryAndInverting) {
  Design d = parse_verilog(R"(
module gates(a, b, c, d, e, y, z);
  input a, b, c, d, e;
  output y, z;
  wire t;
  nand g1(t, a, b, c, d, e);
  not g2(z, t);
  buf g3(y, t);
endmodule
)");
  Simulator sim(d.net);
  for (int m = 0; m < 32; ++m) {
    for (int i = 0; i < 5; ++i) sim.set_input(i, (m >> i) & 1);
    sim.evaluate();
    bool all = (m == 31);
    EXPECT_EQ(sim.read_bus(bus_of(d, "y", NodeKind::kOutput)),
              static_cast<std::uint64_t>(!all))
        << m;
    EXPECT_EQ(sim.read_bus(bus_of(d, "z", NodeKind::kOutput)),
              static_cast<std::uint64_t>(all))
        << m;
  }
}

TEST(Verilog, AlwaysBeginEndBlock) {
  Design d = parse_verilog(R"(
module two(clk, a, q0, q1);
  input clk;
  input [3:0] a;
  output [3:0] q0, q1;
  reg [3:0] r0, r1;
  always @(posedge clk) begin
    r0 <= a;
    r1 <= r0;
  end
  assign q0 = r0;
  assign q1 = r1;
endmodule
)");
  EXPECT_EQ(d.net.num_flipflops(), 8);
  Simulator sim(d.net);
  sim.reset(false);
  std::vector<int> a = bus_of(d, "a", NodeKind::kInput);
  sim.set_input_bus(a, 5);
  sim.step();
  sim.set_input_bus(a, 0);
  sim.step();
  sim.evaluate();
  EXPECT_EQ(sim.read_bus(bus_of(d, "q1", NodeKind::kOutput)), 5u);
}

TEST(Verilog, FullWidthProduct) {
  Design d = parse_verilog(R"(
module widep(a, b, p);
  input [3:0] a, b;
  output [7:0] p;
  assign p = a * b;
endmodule
)");
  Simulator sim(d.net);
  std::vector<int> a = bus_of(d, "a", NodeKind::kInput);
  std::vector<int> b = bus_of(d, "b", NodeKind::kInput);
  for (unsigned x = 0; x < 16; x += 3)
    for (unsigned y = 0; y < 16; y += 5) {
      sim.set_input_bus(a, x);
      sim.set_input_bus(b, y);
      sim.evaluate();
      EXPECT_EQ(sim.read_bus(bus_of(d, "p", NodeKind::kOutput)), x * y);
    }
}

TEST(VerilogErrors, Diagnostics) {
  // Reg assigned with assign.
  EXPECT_THROW(parse_verilog(R"(
module m(a, y);
  input a;
  output y;
  reg r;
  assign r = a;
  assign y = a;
endmodule
)"),
               InputError);
  // Undriven reg.
  EXPECT_THROW(parse_verilog(R"(
module m(clk, a, y);
  input clk, a;
  output y;
  reg r;
  assign y = a;
endmodule
)"),
               InputError);
  // Combinational cycle.
  EXPECT_THROW(parse_verilog(R"(
module m(a, y);
  input [3:0] a;
  output [3:0] y;
  wire [3:0] u, v;
  assign u = v + a;
  assign v = u + a;
  assign y = v;
endmodule
)"),
               InputError);
  // Double drive.
  EXPECT_THROW(parse_verilog(R"(
module m(a, y);
  input a;
  output y;
  assign y = a;
  assign y = a;
endmodule
)"),
               InputError);
  // Width mismatch.
  EXPECT_THROW(parse_verilog(R"(
module m(a, b, y);
  input [3:0] a;
  input [2:0] b;
  output [3:0] y;
  assign y = a + b;
endmodule
)"),
               InputError);
}

TEST(Verilog, CommentsBothStyles) {
  Design d = parse_verilog(
      "// line comment\nmodule m(a, y); /* block\ncomment */ input a; "
      "output y; assign y = a; endmodule\n");
  EXPECT_EQ(d.net.num_outputs(), 1);
}

}  // namespace
}  // namespace nanomap
