#include <gtest/gtest.h>

#include "route/pathfinder.h"

namespace nanomap {
namespace {

// Builds a synthetic clustered design with explicit nets on a grid.
ClusteredDesign synthetic(int num_smbs, int num_cycles,
                          std::vector<PlacedNet> nets) {
  ClusteredDesign cd;
  cd.num_smbs = num_smbs;
  cd.num_cycles = num_cycles;
  cd.nets = std::move(nets);
  return cd;
}

Placement row_placement(int num_smbs, int width) {
  Placement p;
  p.grid = {width, width};
  for (int i = 0; i < num_smbs; ++i) p.site_of_smb.push_back(i);
  return p;
}

PlacedNet net(int driver_node, int cycle, int driver, std::vector<int> sinks) {
  PlacedNet n;
  n.driver_node = driver_node;
  n.cycle = cycle;
  n.driver_smb = driver;
  n.sink_smbs = std::move(sinks);
  return n;
}

TEST(PathFinder, RoutesSimpleNet) {
  ArchParams arch = ArchParams::paper_instance();
  ClusteredDesign cd = synthetic(2, 1, {net(0, 0, 0, {1})});
  Placement p = row_placement(2, 3);
  RrGraph rr(p.grid, arch);
  RoutingResult r = route_design(cd, p, rr);
  ASSERT_TRUE(r.success);
  ASSERT_EQ(r.nets.size(), 1u);
  EXPECT_GT(r.nets[0].sink_delay_ps[0], 0.0);
  EXPECT_GE(r.usage.total(), 1);
}

TEST(PathFinder, AdjacentNetPrefersDirectLink) {
  ArchParams arch = ArchParams::paper_instance();
  ClusteredDesign cd = synthetic(2, 1, {net(0, 0, 0, {1})});
  Placement p = row_placement(2, 3);
  RrGraph rr(p.grid, arch);
  RoutingResult r = route_design(cd, p, rr);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.usage.direct, 1);
  EXPECT_EQ(r.usage.global, 0);
}

TEST(PathFinder, MultiSinkNetSharesTree) {
  ArchParams arch = ArchParams::paper_instance();
  ClusteredDesign cd = synthetic(4, 1, {net(0, 0, 0, {1, 2, 3})});
  Placement p = row_placement(4, 4);
  RrGraph rr(p.grid, arch);
  RoutingResult r = route_design(cd, p, rr);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.nets[0].sink_smbs.size(), 3u);
  for (double d : r.nets[0].sink_delay_ps) EXPECT_GT(d, 0.0);
}

TEST(PathFinder, DelayGrowsWithDistance) {
  ArchParams arch = ArchParams::paper_instance();
  ClusteredDesign cd =
      synthetic(8, 1, {net(0, 0, 0, {1}), net(1, 0, 0, {7})});
  Placement p;
  p.grid = {8, 8};
  for (int i = 0; i < 8; ++i) p.site_of_smb.push_back(i);  // one row
  RrGraph rr(p.grid, arch);
  RoutingResult r = route_design(cd, p, rr);
  ASSERT_TRUE(r.success);
  double near = 0.0, far = 0.0;
  for (const NetRoute& nr : r.nets) {
    if (cd.nets[static_cast<std::size_t>(nr.net_index)].driver_node == 0)
      near = nr.sink_delay_ps[0];
    else
      far = nr.sink_delay_ps[0];
  }
  EXPECT_GT(far, near);
}

TEST(PathFinder, CongestionNegotiationResolvesOveruse) {
  // Many nets between the same adjacent pair exceed the direct-link
  // capacity and must spill to length-1/length-4 wires, but still succeed.
  ArchParams arch = ArchParams::paper_instance();
  arch.direct_links_per_side = 2;
  arch.len1_tracks = 4;
  arch.len4_tracks = 2;
  arch.global_tracks = 2;
  std::vector<PlacedNet> nets;
  for (int i = 0; i < 9; ++i) nets.push_back(net(i, 0, 0, {1}));
  ClusteredDesign cd = synthetic(2, 1, std::move(nets));
  Placement p = row_placement(2, 4);
  RrGraph rr(p.grid, arch);
  RoutingResult r = route_design(cd, p, rr);
  EXPECT_TRUE(r.success) << r.overused_nodes << " overused";
  EXPECT_GT(r.usage.len1 + r.usage.len4 + r.usage.global, 0);
}

TEST(PathFinder, ImpossibleDemandReportsFailure) {
  ArchParams arch = ArchParams::paper_instance();
  arch.direct_links_per_side = 1;
  arch.len1_tracks = 1;
  arch.len4_tracks = 0;
  arch.global_tracks = 0;
  std::vector<PlacedNet> nets;
  for (int i = 0; i < 40; ++i) nets.push_back(net(i, 0, 0, {1}));
  ClusteredDesign cd = synthetic(2, 1, std::move(nets));
  Placement p = row_placement(2, 2);
  RrGraph rr(p.grid, arch);
  RouterOptions opts;
  opts.max_iterations = 8;
  RoutingResult r = route_design(cd, p, rr, opts);
  EXPECT_FALSE(r.success);
  EXPECT_GT(r.overused_nodes, 0);
}

TEST(PathFinder, CyclesAreIndependentCongestionDomains) {
  // The same dense traffic in different folding cycles does not conflict:
  // each cycle reconfigures the interconnect.
  ArchParams arch = ArchParams::paper_instance();
  arch.direct_links_per_side = 2;
  arch.len1_tracks = 2;
  arch.len4_tracks = 0;
  arch.global_tracks = 0;
  std::vector<PlacedNet> nets;
  for (int c = 0; c < 6; ++c)
    for (int i = 0; i < 4; ++i) nets.push_back(net(c * 4 + i, c, 0, {1}));
  ClusteredDesign cd = synthetic(2, 6, std::move(nets));
  Placement p = row_placement(2, 2);
  RrGraph rr(p.grid, arch);
  RoutingResult r = route_design(cd, p, rr);
  EXPECT_TRUE(r.success);
}

TEST(PathFinder, DeterministicResults) {
  ArchParams arch = ArchParams::paper_instance();
  std::vector<PlacedNet> nets;
  for (int i = 0; i < 12; ++i) nets.push_back(net(i, 0, i % 4, {(i + 1) % 4}));
  ClusteredDesign cd = synthetic(4, 1, std::move(nets));
  Placement p = row_placement(4, 3);
  RrGraph rr(p.grid, arch);
  RoutingResult a = route_design(cd, p, rr);
  RoutingResult b = route_design(cd, p, rr);
  ASSERT_EQ(a.nets.size(), b.nets.size());
  for (std::size_t i = 0; i < a.nets.size(); ++i) {
    EXPECT_EQ(a.nets[i].wire_nodes, b.nets[i].wire_nodes);
    EXPECT_EQ(a.nets[i].sink_delay_ps, b.nets[i].sink_delay_ps);
  }
}

TEST(PathFinder, UsageCountsByType) {
  ArchParams arch = ArchParams::paper_instance();
  ClusteredDesign cd = synthetic(2, 1, {net(0, 0, 0, {1})});
  Placement p;
  p.grid = {8, 8};
  p.site_of_smb = {0, 7};  // far apart in one row
  RrGraph rr(p.grid, arch);
  RoutingResult r = route_design(cd, p, rr);
  ASSERT_TRUE(r.success);
  // A 7-site span should use long wires, not 7 direct hops.
  EXPECT_GT(r.usage.len4 + r.usage.global, 0);
}

}  // namespace
}  // namespace nanomap
