#include <gtest/gtest.h>

#include <random>

#include "arch/defect.h"
#include "circuits/random_dag.h"
#include "core/folding.h"
#include "core/schedule_graph.h"
#include "core/temporal_cluster.h"
#include "route/pathfinder.h"
#include "route/pathfinder_reference.h"

namespace nanomap {
namespace {

// Builds a synthetic clustered design with explicit nets on a grid.
ClusteredDesign synthetic(int num_smbs, int num_cycles,
                          std::vector<PlacedNet> nets) {
  ClusteredDesign cd;
  cd.num_smbs = num_smbs;
  cd.num_cycles = num_cycles;
  cd.nets = std::move(nets);
  return cd;
}

Placement row_placement(int num_smbs, int width) {
  Placement p;
  p.grid = {width, width};
  for (int i = 0; i < num_smbs; ++i) p.site_of_smb.push_back(i);
  return p;
}

PlacedNet net(int driver_node, int cycle, int driver, std::vector<int> sinks) {
  PlacedNet n;
  n.driver_node = driver_node;
  n.cycle = cycle;
  n.driver_smb = driver;
  n.sink_smbs = std::move(sinks);
  return n;
}

TEST(PathFinder, RoutesSimpleNet) {
  ArchParams arch = ArchParams::paper_instance();
  ClusteredDesign cd = synthetic(2, 1, {net(0, 0, 0, {1})});
  Placement p = row_placement(2, 3);
  RrGraph rr(p.grid, arch);
  RoutingResult r = route_design(cd, p, rr);
  ASSERT_TRUE(r.success);
  ASSERT_EQ(r.nets.size(), 1u);
  EXPECT_GT(r.nets[0].sink_delay_ps[0], 0.0);
  EXPECT_GE(r.usage.total(), 1);
}

TEST(PathFinder, AdjacentNetPrefersDirectLink) {
  ArchParams arch = ArchParams::paper_instance();
  ClusteredDesign cd = synthetic(2, 1, {net(0, 0, 0, {1})});
  Placement p = row_placement(2, 3);
  RrGraph rr(p.grid, arch);
  RoutingResult r = route_design(cd, p, rr);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.usage.direct, 1);
  EXPECT_EQ(r.usage.global, 0);
}

TEST(PathFinder, MultiSinkNetSharesTree) {
  ArchParams arch = ArchParams::paper_instance();
  ClusteredDesign cd = synthetic(4, 1, {net(0, 0, 0, {1, 2, 3})});
  Placement p = row_placement(4, 4);
  RrGraph rr(p.grid, arch);
  RoutingResult r = route_design(cd, p, rr);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.nets[0].sink_smbs.size(), 3u);
  for (double d : r.nets[0].sink_delay_ps) EXPECT_GT(d, 0.0);
}

TEST(PathFinder, DelayGrowsWithDistance) {
  ArchParams arch = ArchParams::paper_instance();
  ClusteredDesign cd =
      synthetic(8, 1, {net(0, 0, 0, {1}), net(1, 0, 0, {7})});
  Placement p;
  p.grid = {8, 8};
  for (int i = 0; i < 8; ++i) p.site_of_smb.push_back(i);  // one row
  RrGraph rr(p.grid, arch);
  RoutingResult r = route_design(cd, p, rr);
  ASSERT_TRUE(r.success);
  double near = 0.0, far = 0.0;
  for (const NetRoute& nr : r.nets) {
    if (cd.nets[static_cast<std::size_t>(nr.net_index)].driver_node == 0)
      near = nr.sink_delay_ps[0];
    else
      far = nr.sink_delay_ps[0];
  }
  EXPECT_GT(far, near);
}

TEST(PathFinder, CongestionNegotiationResolvesOveruse) {
  // Many nets between the same adjacent pair exceed the direct-link
  // capacity and must spill to length-1/length-4 wires, but still succeed.
  ArchParams arch = ArchParams::paper_instance();
  arch.direct_links_per_side = 2;
  arch.len1_tracks = 4;
  arch.len4_tracks = 2;
  arch.global_tracks = 2;
  std::vector<PlacedNet> nets;
  for (int i = 0; i < 9; ++i) nets.push_back(net(i, 0, 0, {1}));
  ClusteredDesign cd = synthetic(2, 1, std::move(nets));
  Placement p = row_placement(2, 4);
  RrGraph rr(p.grid, arch);
  RoutingResult r = route_design(cd, p, rr);
  EXPECT_TRUE(r.success) << r.overused_nodes << " overused";
  EXPECT_GT(r.usage.len1 + r.usage.len4 + r.usage.global, 0);
}

TEST(PathFinder, ImpossibleDemandReportsFailure) {
  ArchParams arch = ArchParams::paper_instance();
  arch.direct_links_per_side = 1;
  arch.len1_tracks = 1;
  arch.len4_tracks = 0;
  arch.global_tracks = 0;
  std::vector<PlacedNet> nets;
  for (int i = 0; i < 40; ++i) nets.push_back(net(i, 0, 0, {1}));
  ClusteredDesign cd = synthetic(2, 1, std::move(nets));
  Placement p = row_placement(2, 2);
  RrGraph rr(p.grid, arch);
  RouterOptions opts;
  opts.max_iterations = 8;
  RoutingResult r = route_design(cd, p, rr, opts);
  EXPECT_FALSE(r.success);
  EXPECT_GT(r.overused_nodes, 0);
}

TEST(PathFinder, CyclesAreIndependentCongestionDomains) {
  // The same dense traffic in different folding cycles does not conflict:
  // each cycle reconfigures the interconnect.
  ArchParams arch = ArchParams::paper_instance();
  arch.direct_links_per_side = 2;
  arch.len1_tracks = 2;
  arch.len4_tracks = 0;
  arch.global_tracks = 0;
  std::vector<PlacedNet> nets;
  for (int c = 0; c < 6; ++c)
    for (int i = 0; i < 4; ++i) nets.push_back(net(c * 4 + i, c, 0, {1}));
  ClusteredDesign cd = synthetic(2, 6, std::move(nets));
  Placement p = row_placement(2, 2);
  RrGraph rr(p.grid, arch);
  RoutingResult r = route_design(cd, p, rr);
  EXPECT_TRUE(r.success);
}

TEST(PathFinder, DeterministicResults) {
  ArchParams arch = ArchParams::paper_instance();
  std::vector<PlacedNet> nets;
  for (int i = 0; i < 12; ++i) nets.push_back(net(i, 0, i % 4, {(i + 1) % 4}));
  ClusteredDesign cd = synthetic(4, 1, std::move(nets));
  Placement p = row_placement(4, 3);
  RrGraph rr(p.grid, arch);
  RoutingResult a = route_design(cd, p, rr);
  RoutingResult b = route_design(cd, p, rr);
  ASSERT_EQ(a.nets.size(), b.nets.size());
  for (std::size_t i = 0; i < a.nets.size(); ++i) {
    EXPECT_EQ(a.nets[i].wire_nodes, b.nets[i].wire_nodes);
    EXPECT_EQ(a.nets[i].sink_delay_ps, b.nets[i].sink_delay_ps);
  }
}

// ---------------------------------------------------------------------------
// Differential route-equivalence harness: the incremental kernel must be
// byte-identical to the verbatim seed router for any input (DESIGN.md §5g).

void expect_identical(const RoutingResult& got, const RoutingResult& want,
                      const std::string& ctx) {
  EXPECT_EQ(got.success, want.success) << ctx;
  EXPECT_EQ(got.worst_iterations, want.worst_iterations) << ctx;
  EXPECT_EQ(got.overused_nodes, want.overused_nodes) << ctx;
  EXPECT_EQ(got.usage.direct, want.usage.direct) << ctx;
  EXPECT_EQ(got.usage.len1, want.usage.len1) << ctx;
  EXPECT_EQ(got.usage.len4, want.usage.len4) << ctx;
  EXPECT_EQ(got.usage.global, want.usage.global) << ctx;
  ASSERT_EQ(got.nets.size(), want.nets.size()) << ctx;
  for (std::size_t i = 0; i < got.nets.size(); ++i) {
    EXPECT_EQ(got.nets[i].net_index, want.nets[i].net_index) << ctx;
    EXPECT_EQ(got.nets[i].sink_smbs, want.nets[i].sink_smbs) << ctx;
    EXPECT_EQ(got.nets[i].sink_delay_ps, want.nets[i].sink_delay_ps) << ctx;
    EXPECT_EQ(got.nets[i].wire_nodes, want.nets[i].wire_nodes) << ctx;
  }
}

// Schedules, clusters and places a random DAG at one folding level — a
// miniature of the flow's front end, so the router sees realistic
// multi-cycle nets without paying for the whole flow per config.
struct Physical {
  Design d;
  DesignSchedule sched;
  ClusteredDesign cd;
  Placement p;
};

Physical build_physical(const RandomDagSpec& spec, int level,
                        const ArchParams& arch) {
  Physical ph;
  ph.d = make_random_design(spec);
  CircuitParams params = extract_circuit_params(ph.d.net);
  ph.sched.folding = make_folding_config(params, level);
  ph.sched.planes_share = !ph.sched.folding.no_folding();
  for (int plane = 0; plane < params.num_plane; ++plane) {
    PlaneScheduleGraph g =
        build_schedule_graph(ph.d, plane, ph.sched.folding);
    ph.sched.plane_results.push_back(schedule_plane(g, arch));
    ph.sched.graphs.push_back(std::move(g));
  }
  ph.cd = temporal_cluster(ph.d, ph.sched, arch);
  PlacementOptions popts;
  popts.fast_effort = 0.3;  // cheap placements; the router is under test
  popts.detailed_effort = 1.0;
  PlacementResult pr = place_design(ph.cd, arch, popts);
  ph.p = pr.placement;
  return ph;
}

TEST(PathFinderDifferential, SweepSeedsLevelsChannels) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    for (int level : {0, 1, 2}) {
      for (bool narrow : {false, true}) {
        ArchParams arch = ArchParams::paper_instance_unbounded_k();
        if (narrow) {
          arch.direct_links_per_side = 2;
          arch.len1_tracks = 4;
          arch.len4_tracks = 2;
          arch.global_tracks = 2;
        }
        RandomDagSpec spec;
        spec.luts_per_plane = 30;
        spec.depth = 4;
        spec.num_inputs = 10;
        spec.seed = seed;
        Physical ph = build_physical(spec, level, arch);
        RrGraph rr(ph.p.grid, arch);
        std::string ctx = "seed " + std::to_string(seed) + " level " +
                          std::to_string(level) +
                          (narrow ? " narrow" : " normal");
        RouterOptions opts;
        opts.max_iterations = 20;  // allow honest failures on narrow fabrics
        expect_identical(route_design(ph.cd, ph.p, rr, opts),
                         route_nets_reference(ph.cd, ph.p, rr, opts), ctx);
        if (seed == 1) {  // batched negotiation, pooled vs. reference
          opts.batch_size = 4;
          ThreadPool pool(4);
          expect_identical(
              route_design(ph.cd, ph.p, rr, opts, &pool),
              route_nets_reference(ph.cd, ph.p, rr, opts),
              ctx + " batch4");
        }
      }
    }
  }
}

TEST(PathFinderDifferential, LadderReplayMatchesColdReference) {
  // Cycle 0 is trivially routable, cycle 1 is congested: climbing a
  // budget rung and then a channel rung must replay cycle 0 from the
  // cache while staying byte-identical to a cold reference route.
  ArchParams arch = ArchParams::paper_instance();
  arch.direct_links_per_side = 2;
  arch.len1_tracks = 4;
  arch.len4_tracks = 2;
  arch.global_tracks = 2;
  std::vector<PlacedNet> nets;
  nets.push_back(net(100, 0, 2, {3}));
  for (int i = 0; i < 9; ++i) nets.push_back(net(i, 1, 0, {1}));
  ClusteredDesign cd = synthetic(4, 2, std::move(nets));
  Placement p = row_placement(4, 4);
  RrGraph rr(p.grid, arch);
  RouteState state;

  RouterOptions starved;
  starved.max_iterations = 2;
  RoutingResult r0 = route_design(cd, p, rr, starved, nullptr, &state);
  expect_identical(r0, route_nets_reference(cd, p, rr, starved), "rung 0");

  // Budget rung: same graph, raised iteration budget. The easy cycle
  // converged in one clean iteration, so it replays from the cache.
  RouterOptions raised = starved;
  raised.max_iterations = 60;
  raised.pres_fac_mult = 1.0 + (raised.pres_fac_mult - 1.0) * 1.5;
  raised.hist_fac *= 1.5;
  RoutingResult r1 = route_design(cd, p, rr, raised, nullptr, &state);
  expect_identical(r1, route_nets_reference(cd, p, rr, raised), "rung 1");
  EXPECT_GE(r1.reuse.cycles_reused, 1);

  // Channel rung: widen in place; the easy cycle (which never read a
  // congested cost) must survive the capacity epoch bump.
  ArchParams wide = arch;
  wide.len1_tracks += 2;
  wide.len4_tracks += 1;
  wide.global_tracks += 1;
  rr.widen_channels(wide);
  RoutingResult r2 = route_design(cd, p, rr, raised, nullptr, &state);
  expect_identical(r2, route_nets_reference(cd, p, rr, raised), "rung 2");
  EXPECT_GE(r2.reuse.cycles_reused, 1);
  EXPECT_TRUE(r2.success);
}

TEST(PathFinderIncremental, CrossCycleReuseWithinOneCall) {
  // Three folding cycles with the same geometry: cycles 1 and 2 replay
  // cycle 0's negotiation instead of re-running it.
  std::vector<PlacedNet> nets;
  for (int c = 0; c < 3; ++c) {
    nets.push_back(net(c * 2, c, 0, {1, 2}));
    nets.push_back(net(c * 2 + 1, c, 3, {0}));
  }
  ClusteredDesign cd = synthetic(4, 3, std::move(nets));
  Placement p = row_placement(4, 3);
  ArchParams arch = ArchParams::paper_instance();
  RrGraph rr(p.grid, arch);
  RoutingResult r = route_design(cd, p, rr);
  expect_identical(r, route_nets_reference(cd, p, rr), "cross-cycle");
  EXPECT_EQ(r.reuse.cycles_total, 3);
  EXPECT_EQ(r.reuse.cycles_reused, 2);
  EXPECT_EQ(r.reuse.nets_reused, 4);
}

TEST(PathFinderIncremental, CleanNetsSkipRepeatSearches) {
  // Nine nets fight over one corner while two far-away nets route
  // congestion-free: once searched, the far nets skip every subsequent
  // PathFinder iteration (their touched nodes never get re-stamped).
  ArchParams arch = ArchParams::paper_instance();
  arch.direct_links_per_side = 2;
  arch.len1_tracks = 4;
  arch.len4_tracks = 2;
  arch.global_tracks = 2;
  std::vector<PlacedNet> nets;
  for (int i = 0; i < 9; ++i) nets.push_back(net(i, 0, 0, {1}));
  nets.push_back(net(9, 0, 6, {7}));
  nets.push_back(net(10, 0, 7, {6}));
  ClusteredDesign cd = synthetic(8, 1, std::move(nets));
  Placement p = row_placement(8, 4);
  RrGraph rr(p.grid, arch);
  RoutingResult r = route_design(cd, p, rr);
  expect_identical(r, route_nets_reference(cd, p, rr), "skip");
  ASSERT_GT(r.worst_iterations, 1);  // the corner actually negotiated
  EXPECT_GT(r.reuse.nets_skipped, 0);
  EXPECT_TRUE(r.success);
}

// ---------------------------------------------------------------------------
// Route-tree property/invariant checks (validate_routing) and fuzzed
// incremental edit sequences.

TEST(ValidateRouting, AcceptsRealResultsRejectsCorruptions) {
  // Needs a design big enough to span several SMBs: a single-SMB
  // clustering has no inter-SMB nets, and every corruption below would
  // be a no-op.
  Physical ph;
  {
    RandomDagSpec spec;
    spec.luts_per_plane = 96;
    spec.depth = 4;
    spec.num_inputs = 20;
    spec.seed = 3;
    ArchParams arch = ArchParams::paper_instance_unbounded_k();
    ph = build_physical(spec, 1, arch);
  }
  ArchParams arch = ArchParams::paper_instance_unbounded_k();
  RrGraph rr(ph.p.grid, arch);
  RoutingResult r = route_design(ph.cd, ph.p, rr);
  ASSERT_TRUE(r.success);
  ASSERT_FALSE(r.nets.empty());
  std::string why;
  EXPECT_TRUE(validate_routing(ph.cd, ph.p, rr, r, &why)) << why;

  // OPINs never feed IPINs directly, so stripping a net's wire nodes is
  // guaranteed to disconnect its sinks from the driver.
  RoutingResult broken = r;
  bool corrupted = false;
  for (NetRoute& nr : broken.nets) {
    if (!nr.wire_nodes.empty()) {
      nr.wire_nodes.clear();
      corrupted = true;
      break;
    }
  }
  ASSERT_TRUE(corrupted) << "no net with wire nodes to corrupt";
  EXPECT_FALSE(validate_routing(ph.cd, ph.p, rr, broken, &why));
  EXPECT_FALSE(why.empty());

  // A node listed twice violates the tree-set invariant.
  RoutingResult duped = r;
  for (NetRoute& nr : duped.nets) {
    if (!nr.wire_nodes.empty()) {
      nr.wire_nodes.push_back(nr.wire_nodes.front());
      break;
    }
  }
  EXPECT_FALSE(validate_routing(ph.cd, ph.p, rr, duped, &why));

  RoutingResult missing = r;
  missing.nets.pop_back();
  EXPECT_FALSE(validate_routing(ph.cd, ph.p, rr, missing, &why));

  RoutingResult doubled = r;
  doubled.nets.push_back(doubled.nets.front());
  EXPECT_FALSE(validate_routing(ph.cd, ph.p, rr, doubled, &why));
}

TEST(PathFinderIncremental, FuzzedEditSequencesStayIdentical) {
  // Random ladder walks: widen channels in place, jiggle router budgets
  // and batch sizes, re-route with a persistent RouteState — after every
  // edit the incremental result must equal a cold reference route on the
  // same graph and pass the structural invariants.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    ArchParams arch = ArchParams::paper_instance_unbounded_k();
    arch.direct_links_per_side = 2;
    arch.len1_tracks = 3;
    arch.len4_tracks = 2;
    arch.global_tracks = 2;
    RandomDagSpec spec;
    spec.luts_per_plane = 24;
    spec.depth = 3;
    spec.num_inputs = 8;
    spec.seed = 40 + seed;
    Physical ph = build_physical(spec, 1, arch);
    RrGraph rr(ph.p.grid, arch);
    RouteState state;
    RouterOptions opts;
    opts.max_iterations = 12;
    std::mt19937 rng(static_cast<unsigned>(1000 + seed));
    for (int step = 0; step < 6; ++step) {
      switch (rng() % 3) {
        case 0: {  // in-place channel widening
          ArchParams wide = rr.arch();
          wide.len1_tracks += 1 + static_cast<int>(rng() % 2);
          wide.len4_tracks += static_cast<int>(rng() % 2);
          wide.global_tracks += static_cast<int>(rng() % 2);
          rr.widen_channels(wide);
          break;
        }
        case 1: {  // budget escalation
          opts.max_iterations += static_cast<int>(rng() % 20);
          opts.pres_fac_mult = 1.0 + (opts.pres_fac_mult - 1.0) * 1.3;
          opts.hist_fac *= 1.2;
          break;
        }
        default: {  // batched negotiation schedule
          opts.batch_size = 1 << (rng() % 3);
          break;
        }
      }
      RoutingResult inc = route_design(ph.cd, ph.p, rr, opts, nullptr,
                                       &state);
      RoutingResult ref = route_nets_reference(ph.cd, ph.p, rr, opts);
      expect_identical(inc, ref,
                       "fuzz seed " + std::to_string(seed) + " step " +
                           std::to_string(step));
      std::string why;
      EXPECT_TRUE(validate_routing(ph.cd, ph.p, rr, inc, &why)) << why;
    }
  }
}

TEST(PathFinderStarvation, ExtremePresFacReportsOveruseHonestly) {
  // Regression for the seed's absolute-epsilon stale-entry check
  // (DESIGN.md §5g): at pres_fac ~1e16 the A* priority `cost + est`
  // rounds away far more than 1e-12, so `prio - est` exceeded
  // `best_cost + 1e-12` for *fresh* queue entries, the wavefront starved,
  // and the router raised "sink unreachable" even though a (congested)
  // path exists. With the relative-epsilon guard the router terminates
  // honestly: overused, success = false, structurally valid routes.
  ArchParams arch = ArchParams::paper_instance();
  arch.direct_links_per_side = 0;  // only length-1 wires exist, capacity 1
  arch.len1_tracks = 1;
  arch.len4_tracks = 0;
  arch.global_tracks = 0;
  std::vector<PlacedNet> nets;
  for (int i = 0; i < 3; ++i) nets.push_back(net(i, 0, 0, {5}));
  ClusteredDesign cd = synthetic(6, 1, std::move(nets));
  Placement p = row_placement(6, 6);
  RrGraph rr(p.grid, arch);
  RouterOptions opts;
  opts.initial_pres_fac = 1e16;  // what ~60 escalations reach on an
                                 // unroutable fabric, applied directly
  opts.max_iterations = 3;
  RoutingResult r = route_design(cd, p, rr, opts);
  EXPECT_FALSE(r.success);
  EXPECT_GT(r.overused_nodes, 0);
  std::string why;
  EXPECT_TRUE(validate_routing(cd, p, rr, r, &why)) << why;
  // The fix lives in the reference router too (identity over divergence).
  expect_identical(r, route_nets_reference(cd, p, rr, opts), "starvation");
}

TEST(PathFinderSpeculative, BatchEndsArePairwiseDisjointMaximalRuns) {
  // Property test of the batch scheduler the speculative router uses
  // verbatim: runs cover every slot, respect max_run, are pairwise
  // disjoint, and are maximal (a run only stops at a clash or the cap).
  std::mt19937_64 rng(11);
  for (int trial = 0; trial < 60; ++trial) {
    const int n = 1 + static_cast<int>(rng() % 40);
    const int max_run = 1 + static_cast<int>(rng() % 8);
    std::vector<NetFootprint> fps(static_cast<std::size_t>(n));
    for (NetFootprint& f : fps) {
      f.min_x = static_cast<int>(rng() % 12);
      f.min_y = static_cast<int>(rng() % 12);
      f.max_x = f.min_x + static_cast<int>(rng() % 4);
      f.max_y = f.min_y + static_cast<int>(rng() % 4);
    }
    const std::vector<int> ends = speculative_batch_ends(fps, max_run);
    ASSERT_FALSE(ends.empty());
    EXPECT_EQ(ends.back(), n);
    int start = 0;
    for (int end : ends) {
      ASSERT_GT(end, start);
      EXPECT_LE(end - start, max_run);
      for (int i = start; i < end; ++i)
        for (int j = i + 1; j < end; ++j)
          EXPECT_FALSE(fps[static_cast<std::size_t>(i)].overlaps(
              fps[static_cast<std::size_t>(j)]))
              << "trial " << trial << " run [" << start << "," << end
              << ") members " << i << "," << j;
      if (end < n && end - start < max_run) {
        bool clash = false;
        for (int i = start; i < end && !clash; ++i)
          clash = fps[static_cast<std::size_t>(i)].overlaps(
              fps[static_cast<std::size_t>(end)]);
        EXPECT_TRUE(clash) << "trial " << trial << " run ends at " << end
                           << " with slack but no clash";
      }
      start = end;
    }
  }
}

TEST(PathFinderSpeculative, MatchesSequentialAcrossSeedsLevelsAndPools) {
  // Speculation on must be byte-identical to speculation off — routes,
  // delays, iteration counts AND the sequential-semantic reuse stats —
  // across congested random circuits, and its batch/conflict schedule
  // must be a pure function of the problem, never of the pool width.
  long total_batches = 0;
  for (std::uint64_t seed = 11; seed <= 16; ++seed) {
    for (int level : {0, 1, 2}) {
      ArchParams arch = ArchParams::paper_instance_unbounded_k();
      arch.direct_links_per_side = 2;  // narrow: keep the negotiation real
      arch.len1_tracks = 4;
      arch.len4_tracks = 2;
      arch.global_tracks = 2;
      RandomDagSpec spec;
      spec.luts_per_plane = 120;  // big enough that disjoint runs exist
      spec.depth = 4;
      spec.num_inputs = 10;
      spec.seed = seed;
      Physical ph = build_physical(spec, level, arch);
      RrGraph rr(ph.p.grid, arch);
      const std::string ctx =
          "seed " + std::to_string(seed) + " level " + std::to_string(level);
      RouterOptions off;
      off.max_iterations = 20;
      off.speculative = false;
      const RoutingResult want = route_design(ph.cd, ph.p, rr, off);
      EXPECT_EQ(want.reuse.spec_batches, 0) << ctx;
      EXPECT_EQ(want.reuse.spec_conflicts, 0) << ctx;
      std::vector<std::pair<int, int>> losers1;
      for (int threads : {1, 4}) {
        ThreadPool pool(threads);
        RouterOptions on;
        on.max_iterations = 20;
        std::vector<std::pair<int, int>> losers;
        on.spec_loser_log = &losers;
        const RoutingResult got = route_design(ph.cd, ph.p, rr, on, &pool);
        const std::string pctx = ctx + " pool " + std::to_string(threads);
        expect_identical(got, want, pctx);
        EXPECT_EQ(got.reuse.nets_rerouted, want.reuse.nets_rerouted) << pctx;
        EXPECT_EQ(got.reuse.nets_skipped, want.reuse.nets_skipped) << pctx;
        EXPECT_EQ(got.reuse.net_cache_hits, want.reuse.net_cache_hits)
            << pctx;
        EXPECT_EQ(got.reuse.net_cache_misses, want.reuse.net_cache_misses)
            << pctx;
        if (threads == 1) {
          losers1 = losers;
          total_batches += got.reuse.spec_batches;
        } else {
          EXPECT_EQ(losers, losers1) << pctx << ": loser schedule must be "
                                     << "thread-count invariant";
        }
        if (level == 0) {
          // Single folding cycle: batch ordinals never reset, so the
          // loser log must be grouped by batch with members re-routed in
          // strictly increasing net order inside each batch.
          for (std::size_t i = 1; i < losers.size(); ++i) {
            EXPECT_GE(losers[i].first, losers[i - 1].first) << pctx;
            if (losers[i].first == losers[i - 1].first)
              EXPECT_GT(losers[i].second, losers[i - 1].second) << pctx;
          }
        }
      }
    }
  }
  // The sweep must actually exercise multi-net batches, or the identity
  // claim proves nothing about the parallel phase. (Commit-time losers
  // are forced deterministically by the dispersed-contention test below.)
  EXPECT_GT(total_batches, 0);
}

TEST(PathFinderSpeculative, DispersedContendingNetsConflictAtCommit) {
  // Four bbox-disjoint nets on a global-only fabric. Iteration 1 batches
  // all four (terminal boxes are pairwise disjoint), but each row's pair
  // shares that row's single capacity-1 global line — whose anchor
  // (x = 0) lies outside the right-hand net's terminal box, so the
  // scheduler cannot see the collision up front. The left net of each
  // pair commits first and wins; the right net's read-set certificate
  // watches the clamped overuse on the shared line flip 0 -> 1, discards
  // the speculative tree, and falls back to a live sequential search.
  ArchParams arch = ArchParams::paper_instance_unbounded_k();
  arch.direct_links_per_side = 0;
  arch.len1_tracks = 0;
  arch.len4_tracks = 0;
  arch.global_tracks = 1;
  ClusteredDesign cd = synthetic(24, 1,
                                 {net(0, 0, 0, {2}), net(1, 0, 5, {7}),
                                  net(2, 0, 16, {18}), net(3, 0, 20, {22})});
  Placement p = row_placement(24, 8);
  RrGraph rr(p.grid, arch);
  RouterOptions off;
  off.speculative = false;
  const RoutingResult want = route_design(cd, p, rr, off);
  ASSERT_TRUE(want.success) << want.overused_nodes << " overused";
  EXPECT_EQ(want.reuse.spec_batches, 0);
  EXPECT_EQ(want.reuse.spec_conflicts, 0);
  std::vector<std::pair<int, int>> losers1;
  for (int threads : {1, 4}) {
    ThreadPool pool(threads);
    RouterOptions on;
    std::vector<std::pair<int, int>> losers;
    on.spec_loser_log = &losers;
    const RoutingResult got = route_design(cd, p, rr, on, &pool);
    const std::string ctx = "pool " + std::to_string(threads);
    expect_identical(got, want, ctx);
    EXPECT_GT(got.reuse.spec_batches, 0) << ctx;
    EXPECT_GT(got.reuse.spec_conflicts, 0) << ctx;
    ASSERT_FALSE(losers.empty()) << ctx;
    // Losers re-route grouped by batch, in net order inside each batch.
    for (std::size_t i = 1; i < losers.size(); ++i) {
      EXPECT_GE(losers[i].first, losers[i - 1].first) << ctx;
      if (losers[i].first == losers[i - 1].first)
        EXPECT_GT(losers[i].second, losers[i - 1].second) << ctx;
    }
    if (threads == 1) {
      losers1 = losers;
    } else {
      EXPECT_EQ(losers, losers1)
          << ctx << ": loser schedule must be thread-count invariant";
    }
  }
  std::string why;
  EXPECT_TRUE(validate_routing(cd, p, rr, want, &why)) << why;
}

TEST(PathFinderSpeculative, GlobalLineMasksKeepDistantFootprintsDisjoint) {
  // Regression for the global-line anchoring bug: a global line's RR node
  // anchors at x/y = 0, and folding that anchor into a tree's bounding
  // box stretched every global-bearing footprint to the fabric edge,
  // serializing iteration >= 2 batches on global-heavy circuits. Global
  // lines now land in per-axis row/column masks instead, so two trees in
  // opposite quadrants batch together as long as their spanned rows and
  // columns differ.
  NetFootprint a;  // quadrant near the origin, globals on row 6 / col 1
  a.min_x = 1, a.max_x = 5, a.min_y = 1, a.max_y = 6;
  a.global_rows = 1ull << 6;
  a.global_cols = 1ull << 1;
  NetFootprint b;  // far quadrant, globals on row 9 / col 14
  b.min_x = 9, b.max_x = 14, b.min_y = 9, b.max_y = 12;
  b.global_rows = 1ull << 9;
  b.global_cols = 1ull << 14;
  EXPECT_FALSE(a.overlaps(b));
  EXPECT_EQ(speculative_batch_ends({a, b}, 8), (std::vector<int>{2}));

  // Sharing one global row forces a clash even with disjoint boxes...
  NetFootprint c = b;
  c.global_rows = 1ull << 6;  // same row as a
  EXPECT_TRUE(a.overlaps(c));
  EXPECT_EQ(speculative_batch_ends({a, c}, 8), (std::vector<int>{1, 2}));
  // ...including through the conservative mod-64 alias of the mask.
  NetFootprint d = b;
  d.global_rows = 1ull << (70 % 64);  // row 70 aliases row 6
  EXPECT_TRUE(a.overlaps(d));

  // A mask-only footprint (empty box: max < min) conflicts exactly on
  // its global lines — the empty box itself overlaps nothing.
  NetFootprint g;
  g.global_cols = 1ull << 1;  // same column as a
  EXPECT_TRUE(a.overlaps(g));
  EXPECT_FALSE(b.overlaps(g));
}

TEST(PathFinderSpeculative, GlobalHeavyReripsStillBatchAcrossRows) {
  // End-to-end companion to the mask regression above: the dispersed
  // four-net scenario re-rips both pairs after iteration 1 (each pair
  // shares its row's capacity-1 global line), and from iteration 2 on
  // the footprints are committed *trees* containing global lines. With
  // the old anchoring every such tree's box hit the fabric edge and all
  // re-rips serialized (exactly one multi-net batch, from iteration 1's
  // terminal boxes); with row/column masks the row-0 and row-2 nets
  // keep batching, so multi-net batches outnumber the terminal one.
  ArchParams arch = ArchParams::paper_instance_unbounded_k();
  arch.direct_links_per_side = 0;
  arch.len1_tracks = 0;
  arch.len4_tracks = 0;
  arch.global_tracks = 1;
  ClusteredDesign cd = synthetic(24, 1,
                                 {net(0, 0, 0, {2}), net(1, 0, 5, {7}),
                                  net(2, 0, 16, {18}), net(3, 0, 20, {22})});
  Placement p = row_placement(24, 8);
  RrGraph rr(p.grid, arch);
  RouterOptions off;
  off.speculative = false;
  const RoutingResult want = route_design(cd, p, rr, off);
  ASSERT_TRUE(want.success) << want.overused_nodes << " overused";
  ThreadPool pool(4);
  const RoutingResult got = route_design(cd, p, rr, {}, &pool);
  expect_identical(got, want, "global-heavy re-rips");
  EXPECT_GE(got.reuse.spec_batches, 2)
      << "tree footprints with global lines must stay batchable";
}

TEST(PathFinderNetCache, SharedGeometryAcrossDifferentCyclesHitsTheCache) {
  // Cycle 1 repeats one of cycle 0's net geometries next to a brand-new
  // net: the whole-cycle signatures differ (no cycle replay), but the
  // repeated net's congestion-clean search is served by the per-net
  // geometric cache — with the result still byte-identical to the seed
  // router, which has no such cache.
  std::vector<PlacedNet> nets;
  nets.push_back(net(0, 0, 0, {5}));
  nets.push_back(net(1, 0, 1, {6}));
  nets.push_back(net(2, 1, 0, {5}));  // geometry of net 0, next cycle
  nets.push_back(net(3, 1, 2, {7}));
  ClusteredDesign cd = synthetic(8, 2, std::move(nets));
  Placement p = row_placement(8, 8);
  ArchParams arch = ArchParams::paper_instance();
  RrGraph rr(p.grid, arch);
  RoutingResult r = route_design(cd, p, rr);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.reuse.cycles_reused, 0);
  EXPECT_GE(r.reuse.net_cache_hits, 1);
  expect_identical(r, route_nets_reference(cd, p, rr, {}), "net cache");
  std::string why;
  EXPECT_TRUE(validate_routing(cd, p, rr, r, &why)) << why;
}

TEST(PathFinderNetCache, CarriesAcrossCallsToCompatSiblingGraphs) {
  // A shared RouteState donates per-net routes to a later call on a
  // *different, widened* graph instance: the cycle cache cannot match
  // (entries are uid-keyed), but net geometry + the graphs' compatibility
  // signature can — admission re-checks the read-set against the live
  // (wider) capacities, so the replay stays provably identical.
  ArchParams arch = ArchParams::paper_instance();
  std::vector<PlacedNet> nets;
  nets.push_back(net(0, 0, 0, {5}));
  nets.push_back(net(1, 0, 1, {6}));
  ClusteredDesign cd = synthetic(8, 1, std::move(nets));
  Placement p = row_placement(8, 8);
  RouteState state;
  RrGraph rr1(p.grid, arch);
  RoutingResult r1 = route_design(cd, p, rr1, {}, nullptr, &state);
  EXPECT_TRUE(r1.success);
  EXPECT_EQ(r1.reuse.net_cache_hits, 0);
  EXPECT_GT(state.net_size(), 0u);

  ArchParams wider = arch;
  wider.len1_tracks += 2;
  wider.global_tracks += 1;
  RrGraph rr2(p.grid, wider);
  EXPECT_EQ(rr1.compat_sig(), rr2.compat_sig());
  EXPECT_NE(rr1.uid(), rr2.uid());
  RoutingResult r2 = route_design(cd, p, rr2, {}, nullptr, &state);
  EXPECT_TRUE(r2.success);
  EXPECT_EQ(r2.reuse.cycles_reused, 0);
  EXPECT_GE(r2.reuse.net_cache_hits, 1);
  expect_identical(r2, route_nets_reference(cd, p, rr2, {}), "widened");

  // A sibling with different delays is NOT compatible: no false sharing.
  ArchParams slower = arch;
  slower.len1_wire_delay_ps *= 2.0;
  RrGraph rr3(p.grid, slower);
  EXPECT_NE(rr1.compat_sig(), rr3.compat_sig());
  RoutingResult r3 = route_design(cd, p, rr3, {}, nullptr, &state);
  EXPECT_EQ(r3.reuse.net_cache_hits, 0);
  expect_identical(r3, route_nets_reference(cd, p, rr3, {}), "slower");
}

TEST(PathFinderNetCache, DefectMaskChangeInvalidatesCompatSharing) {
  // Editing the fabric's defect map is an arch edit: a graph built with
  // masked wire capacity must never serve cached routes recorded on the
  // clean fabric (a replayed route could run straight through a broken
  // track), and two graphs with the *same* defect spec remain compatible
  // siblings. The defect content signature is folded into compat_sig, so
  // the per-net geometric cache partitions correctly on its own.
  ArchParams arch = ArchParams::paper_instance();
  std::vector<PlacedNet> nets;
  nets.push_back(net(0, 0, 0, {5}));
  nets.push_back(net(1, 0, 1, {6}));
  ClusteredDesign cd = synthetic(8, 1, std::move(nets));
  Placement p = row_placement(8, 8);
  RouteState state;
  RrGraph clean(p.grid, arch);
  RoutingResult r1 = route_design(cd, p, clean, {}, nullptr, &state);
  ASSERT_TRUE(r1.success);
  EXPECT_GT(state.net_size(), 0u);

  ArchParams broken = arch;
  broken.defects = parse_defect_rates("seed=5,wire=0.15");
  RrGraph rr_broken(p.grid, broken);
  EXPECT_NE(clean.compat_sig(), rr_broken.compat_sig());
  RoutingResult r2 = route_design(cd, p, rr_broken, {}, nullptr, &state);
  ASSERT_TRUE(r2.success);
  EXPECT_EQ(r2.reuse.net_cache_hits, 0)
      << "routes recorded on the clean fabric leaked onto a broken one";
  expect_identical(r2, route_nets_reference(cd, p, rr_broken, {}), "broken");

  // Same defect spec on a fresh graph instance: compatible sibling, and
  // the routes recorded on rr_broken replay.
  RrGraph rr_same(p.grid, broken);
  EXPECT_EQ(rr_broken.compat_sig(), rr_same.compat_sig());
  EXPECT_NE(rr_broken.uid(), rr_same.uid());
  RoutingResult r3 = route_design(cd, p, rr_same, {}, nullptr, &state);
  ASSERT_TRUE(r3.success);
  EXPECT_GE(r3.reuse.net_cache_hits, 1);
  expect_identical(r3, route_nets_reference(cd, p, rr_same, {}), "sibling");

  // A different defect seed is a different fabric: no sharing either way.
  ArchParams reseeded = arch;
  reseeded.defects = parse_defect_rates("seed=6,wire=0.15");
  RrGraph rr_reseeded(p.grid, reseeded);
  EXPECT_NE(rr_broken.compat_sig(), rr_reseeded.compat_sig());
  RoutingResult r4 = route_design(cd, p, rr_reseeded, {}, nullptr, &state);
  EXPECT_EQ(r4.reuse.net_cache_hits, 0);
  expect_identical(r4, route_nets_reference(cd, p, rr_reseeded, {}),
                   "reseeded");
}

TEST(PathFinder, UsageCountsByType) {
  ArchParams arch = ArchParams::paper_instance();
  ClusteredDesign cd = synthetic(2, 1, {net(0, 0, 0, {1})});
  Placement p;
  p.grid = {8, 8};
  p.site_of_smb = {0, 7};  // far apart in one row
  RrGraph rr(p.grid, arch);
  RoutingResult r = route_design(cd, p, rr);
  ASSERT_TRUE(r.success);
  // A 7-site span should use long wires, not 7 direct hops.
  EXPECT_GT(r.usage.len4 + r.usage.global, 0);
}

}  // namespace
}  // namespace nanomap
