// ThreadPool contract tests: degenerate inline pools, FIFO submission
// order, parallel_for index coverage, deterministic (lowest-index)
// exception propagation, and reentrancy from worker threads.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/rng.h"
#include "util/thread_pool.h"

namespace nanomap {
namespace {

TEST(ThreadPool, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1);
}

TEST(ThreadPool, DegeneratePoolsRunInline) {
  for (int n : {0, 1}) {
    ThreadPool pool(n);
    EXPECT_GE(pool.num_threads(), n == 0 ? 1 : 1);
    const std::thread::id caller = std::this_thread::get_id();
    std::thread::id ran_on;
    std::future<void> f = pool.submit([&] { ran_on = std::this_thread::get_id(); });
    // Inline execution: the task already ran, on the calling thread.
    EXPECT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
    EXPECT_EQ(ran_on, caller);

    std::vector<int> order;
    for (int i = 0; i < 8; ++i) pool.submit([&, i] { order.push_back(i); });
    ASSERT_EQ(order.size(), 8u);
    for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(ThreadPool, SubmitRunsTasksInFifoOrder) {
  ThreadPool pool(2);  // one worker thread drains the queue in order
  std::mutex mu;
  std::vector<int> started;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([&, i] {
      std::lock_guard<std::mutex> lock(mu);
      started.push_back(i);
    }));
  }
  for (auto& f : futures) f.get();
  // A 2-thread pool has exactly one worker, so queue order is start order.
  ASSERT_EQ(started.size(), 64u);
  for (int i = 0; i < 64; ++i)
    EXPECT_EQ(started[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPool, SubmitPropagatesExceptionThroughFuture) {
  for (int threads : {1, 4}) {
    ThreadPool pool(threads);
    std::future<void> f =
        pool.submit([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(f.get(), std::runtime_error);
    // The pool must still be usable afterwards.
    std::atomic<int> ran{0};
    pool.submit([&] { ran = 1; }).get();
    EXPECT_EQ(ran.load(), 1);
  }
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h = 0;
    pool.parallel_for(257, [&](int i) { ++hits[static_cast<std::size_t>(i)]; });
    for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ParallelForZeroAndOneIndex) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(0, [&](int) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(1, [&](int i) {
    EXPECT_EQ(i, 0);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ParallelForRethrowsLowestFailingIndex) {
  // Indices 5, 9 and 200 throw; every thread count must report index 5 —
  // error reporting is part of the determinism contract.
  for (int threads : {1, 3, 8}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(256);
    for (auto& h : hits) h = 0;
    try {
      pool.parallel_for(256, [&](int i) {
        ++hits[static_cast<std::size_t>(i)];
        if (i == 5 || i == 9 || i == 200)
          throw std::runtime_error("fail " + std::to_string(i));
      });
      FAIL() << "expected an exception (threads=" << threads << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "fail 5") << "threads=" << threads;
    }
    // Every index was still attempted despite the failures.
    for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, StressConcurrentMultiFailureIsDeterministic) {
  // Randomized failing index sets with mixed exception *types*: whatever
  // races the workers run, parallel_for must (a) attempt every index,
  // (b) rethrow exactly the lowest failing index's exception, preserving
  // its message — the error contract the flow's recovery ladder and the
  // fault-injection sweep build on.
  auto fail_message = [](int i) { return "task " + std::to_string(i); };
  auto fail_with_mixed_type = [&](int i) {
    switch (i % 3) {
      case 0: throw std::runtime_error(fail_message(i));
      case 1: throw std::logic_error(fail_message(i));
      default: throw std::out_of_range(fail_message(i));
    }
  };
  for (int threads : {2, 4, 8}) {
    ThreadPool pool(threads);
    Rng rng(static_cast<std::uint64_t>(threads) * 1000 + 7);
    for (int round = 0; round < 50; ++round) {
      const int n = rng.next_int(1, 128);
      std::vector<char> fails(static_cast<std::size_t>(n), 0);
      const int num_failures = rng.next_int(1, 8);
      for (int k = 0; k < num_failures; ++k)
        fails[static_cast<std::size_t>(rng.next_int(0, n - 1))] = 1;
      int lowest = 0;
      while (!fails[static_cast<std::size_t>(lowest)]) ++lowest;

      std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
      for (auto& h : hits) h = 0;
      try {
        pool.parallel_for(n, [&](int i) {
          ++hits[static_cast<std::size_t>(i)];
          if (fails[static_cast<std::size_t>(i)]) fail_with_mixed_type(i);
        });
        FAIL() << "expected an exception (threads=" << threads
               << " round=" << round << ")";
      } catch (const std::exception& e) {
        EXPECT_EQ(std::string(e.what()), fail_message(lowest))
            << "threads=" << threads << " round=" << round;
      }
      for (auto& h : hits) EXPECT_EQ(h.load(), 1);
    }
  }
}

TEST(ThreadPool, ParallelForPreservesExceptionTypeOfLowestIndex) {
  // Index 4 throws logic_error, index 7 runtime_error: the caller must
  // see index 4's *type*, not just its message, at every thread count.
  for (int threads : {1, 4}) {
    ThreadPool pool(threads);
    bool caught_logic = false;
    try {
      pool.parallel_for(16, [](int i) {
        if (i == 4) throw std::logic_error("logic 4");
        if (i == 7) throw std::runtime_error("runtime 7");
      });
    } catch (const std::logic_error& e) {
      caught_logic = true;
      EXPECT_STREQ(e.what(), "logic 4");
    } catch (const std::exception&) {
    }
    EXPECT_TRUE(caught_logic) << "threads=" << threads;
  }
}

TEST(ThreadPool, ParallelForEveryIndexFailing) {
  // The degenerate worst case: all 128 indices throw. Still: full
  // coverage, lowest index (0) reported, pool reusable afterwards.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(128);
  for (auto& h : hits) h = 0;
  try {
    pool.parallel_for(128, [&](int i) {
      ++hits[static_cast<std::size_t>(i)];
      throw std::runtime_error("all " + std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "all 0");
  }
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  std::atomic<long> sum{0};
  pool.parallel_for(16, [&](int i) { sum += i; });
  EXPECT_EQ(sum.load(), 120);
}

TEST(ThreadPool, ParallelForIsReentrantFromWorkers) {
  // A parallel_for inside a pool task must run inline instead of
  // deadlocking on the pool's own queue.
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  for (auto& h : hits) h = 0;
  pool.parallel_for(8, [&](int outer) {
    pool.parallel_for(8, [&](int inner) {
      ++hits[static_cast<std::size_t>(outer * 8 + inner)];
    });
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, OnWorkerThreadIsPoolSpecific) {
  ThreadPool a(2), b(2);
  EXPECT_FALSE(a.on_worker_thread());
  bool seen_a_in_a = false, seen_b_in_a = true;
  a.submit([&] {
      seen_a_in_a = a.on_worker_thread();
      seen_b_in_a = b.on_worker_thread();
    }).get();
  EXPECT_TRUE(seen_a_in_a);
  EXPECT_FALSE(seen_b_in_a);
}

TEST(ThreadPool, PoolForEachWithoutPoolIsSequential) {
  std::vector<int> order;
  pool_for_each(nullptr, 5, [&](int i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPool, StressManySmallLoops) {
  ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<long> sum{0};
    pool.parallel_for(16, [&](int i) { sum += i; });
    ASSERT_EQ(sum.load(), 120);
  }
}

TEST(DeriveSeed, StreamZeroIsBaseAndStreamsDecorrelate) {
  EXPECT_EQ(derive_seed(42, 0), 42u);
  EXPECT_EQ(derive_seed(7, 0), 7u);
  // Streams differ from the base and from each other.
  std::vector<std::uint64_t> seen;
  for (std::uint64_t s = 0; s < 16; ++s) seen.push_back(derive_seed(42, s));
  for (std::size_t i = 0; i < seen.size(); ++i)
    for (std::size_t j = i + 1; j < seen.size(); ++j)
      EXPECT_NE(seen[i], seen[j]) << i << " vs " << j;
  // And are a pure function of (base, stream).
  EXPECT_EQ(derive_seed(42, 3), derive_seed(42, 3));
  EXPECT_NE(derive_seed(42, 3), derive_seed(43, 3));
}

}  // namespace
}  // namespace nanomap
