#include <gtest/gtest.h>

#include "map/gate_network.h"

namespace nanomap {
namespace {

TEST(GateOps, ArityTable) {
  EXPECT_EQ(gate_op_arity(GateOp::kInput), 0);
  EXPECT_EQ(gate_op_arity(GateOp::kNot), 1);
  EXPECT_EQ(gate_op_arity(GateOp::kBuf), 1);
  EXPECT_EQ(gate_op_arity(GateOp::kAnd), 2);
  EXPECT_EQ(gate_op_arity(GateOp::kXnor), 2);
}

TEST(GateOps, EvalTruthTables) {
  EXPECT_TRUE(gate_op_eval(GateOp::kAnd, true, true));
  EXPECT_FALSE(gate_op_eval(GateOp::kAnd, true, false));
  EXPECT_TRUE(gate_op_eval(GateOp::kOr, false, true));
  EXPECT_TRUE(gate_op_eval(GateOp::kXor, true, false));
  EXPECT_FALSE(gate_op_eval(GateOp::kXor, true, true));
  EXPECT_TRUE(gate_op_eval(GateOp::kNand, false, false));
  EXPECT_FALSE(gate_op_eval(GateOp::kNor, true, false));
  EXPECT_TRUE(gate_op_eval(GateOp::kXnor, true, true));
  EXPECT_FALSE(gate_op_eval(GateOp::kNot, true, false));
  EXPECT_TRUE(gate_op_eval(GateOp::kBuf, true, false));
}

TEST(GateNetwork, EvaluateFullAdderCell) {
  GateNetwork g;
  int a = g.add_input("a");
  int b = g.add_input("b");
  int cin = g.add_input("cin");
  int axb = g.add_gate(GateOp::kXor, "axb", {a, b});
  int s = g.add_gate(GateOp::kXor, "s", {axb, cin});
  int t1 = g.add_gate(GateOp::kAnd, "t1", {a, b});
  int t2 = g.add_gate(GateOp::kAnd, "t2", {axb, cin});
  int cout = g.add_gate(GateOp::kOr, "cout", {t1, t2});
  g.add_output("s", s);
  g.add_output("cout", cout);
  g.validate();

  for (int m = 0; m < 8; ++m) {
    std::vector<bool> in{(m & 1) != 0, (m & 2) != 0, (m & 4) != 0};
    std::vector<bool> out = g.evaluate(in);
    int total = (in[0] ? 1 : 0) + (in[1] ? 1 : 0) + (in[2] ? 1 : 0);
    EXPECT_EQ(out[0], (total & 1) != 0) << m;
    EXPECT_EQ(out[1], total >= 2) << m;
  }
}

TEST(GateNetwork, AdderBuilderMatchesIntegerAdd) {
  GateNetwork g;
  Bus a, b;
  for (int i = 0; i < 5; ++i) a.push_back(g.add_input("a"));
  for (int i = 0; i < 5; ++i) b.push_back(g.add_input("b"));
  int cout = -1;
  Bus sum = build_gate_adder(g, a, b, "add", &cout);
  for (int bit : sum) g.add_output("s", bit);
  g.add_output("c", cout);

  for (int x = 0; x < 32; x += 3) {
    for (int y = 0; y < 32; y += 5) {
      std::vector<bool> in;
      for (int i = 0; i < 5; ++i) in.push_back((x >> i) & 1);
      for (int i = 0; i < 5; ++i) in.push_back((y >> i) & 1);
      std::vector<bool> out = g.evaluate(in);
      int got = 0;
      for (int i = 0; i < 5; ++i) got |= (out[static_cast<std::size_t>(i)] ? 1 : 0) << i;
      got |= (out[5] ? 1 : 0) << 5;
      EXPECT_EQ(got, x + y) << x << "+" << y;
    }
  }
}

TEST(GateNetwork, MuxBuilderSelects) {
  GateNetwork g;
  int sel = g.add_input("sel");
  Bus a{g.add_input("a0"), g.add_input("a1")};
  Bus b{g.add_input("b0"), g.add_input("b1")};
  Bus m = build_gate_mux(g, sel, a, b, "m");
  for (int bit : m) g.add_output("o", bit);

  // sel=0 -> a (=01), sel=1 -> b (=10)
  std::vector<bool> out0 = g.evaluate({false, true, false, false, true});
  EXPECT_TRUE(out0[0]);
  EXPECT_FALSE(out0[1]);
  std::vector<bool> out1 = g.evaluate({true, true, false, false, true});
  EXPECT_FALSE(out1[0]);
  EXPECT_TRUE(out1[1]);
}

TEST(GateNetwork, DepthOfChain) {
  GateNetwork g;
  int a = g.add_input("a");
  int prev = a;
  for (int i = 0; i < 6; ++i)
    prev = g.add_gate(GateOp::kNot, "n", {prev});
  g.add_output("o", prev);
  EXPECT_EQ(g.depth(), 6);
}

TEST(GateNetwork, OutputCannotFeedGate) {
  GateNetwork g;
  int a = g.add_input("a");
  int o = g.add_output("o", a);
  EXPECT_THROW(g.add_gate(GateOp::kNot, "n", {o}), CheckError);
}

TEST(GateNetwork, ArityMismatchRejected) {
  GateNetwork g;
  int a = g.add_input("a");
  EXPECT_THROW(g.add_gate(GateOp::kAnd, "bad", {a}), CheckError);
  EXPECT_THROW(g.add_gate(GateOp::kNot, "bad", {a, a}), CheckError);
}

TEST(GateNetwork, CountsAndIds) {
  GateNetwork g;
  int a = g.add_input("a");
  int b = g.add_input("b");
  g.add_gate(GateOp::kAnd, "g", {a, b});
  g.add_output("o", 2);
  EXPECT_EQ(g.num_inputs(), 2);
  EXPECT_EQ(g.num_outputs(), 1);
  EXPECT_EQ(g.num_logic_gates(), 1);
  EXPECT_EQ(g.input_ids(), (std::vector<int>{0, 1}));
  EXPECT_EQ(g.output_ids(), (std::vector<int>{3}));
}

}  // namespace
}  // namespace nanomap
