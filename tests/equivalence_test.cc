// End-to-end functional equivalence: for any folding level, the folded
// execution of the mapped design (FoldedEmulator, cycle by cycle on the
// clustered mapping) must agree with direct netlist simulation (Simulator)
// on every primary output and register, for arbitrary input sequences.
#include <gtest/gtest.h>

#include "bitstream/emulator.h"
#include "circuits/benchmarks.h"
#include "circuits/random_dag.h"
#include "netlist/plane.h"
#include "netlist/simulate.h"
#include "util/rng.h"

namespace nanomap {
namespace {

DesignSchedule schedule_for(const Design& d, int level,
                            const ArchParams& arch, bool share = true) {
  CircuitParams p = extract_circuit_params(d.net);
  DesignSchedule sched;
  sched.folding = make_folding_config(p, level);
  sched.planes_share = sched.folding.no_folding() ? false : share;
  for (int plane = 0; plane < p.num_plane; ++plane) {
    PlaneScheduleGraph g = build_schedule_graph(d, plane, sched.folding);
    FdsResult r = schedule_plane(g, arch);
    EXPECT_TRUE(r.feasible);
    sched.plane_results.push_back(std::move(r));
    sched.graphs.push_back(std::move(g));
  }
  return sched;
}

// Drives both engines with the same random input sequence and compares
// every register and primary output after every clock.
void expect_folded_equivalent(const Design& d, int level,
                              std::uint64_t seed, int steps = 12) {
  ArchParams arch = ArchParams::paper_instance_unbounded_k();
  DesignSchedule sched = schedule_for(d, level, arch);
  ClusteredDesign cd = temporal_cluster(d, sched, arch);

  Simulator golden(d.net);
  FoldedEmulator folded(d, sched, cd);
  golden.reset(false);
  folded.reset(false);

  std::vector<int> inputs;
  for (int id = 0; id < d.net.size(); ++id)
    if (d.net.node(id).kind == NodeKind::kInput) inputs.push_back(id);

  Rng rng(seed);
  for (int s = 0; s < steps; ++s) {
    for (int pi : inputs) {
      bool v = rng.next_bool();
      golden.set_input(pi, v);
      folded.set_input(pi, v);
    }
    golden.step();
    folded.run_pass();
    // Primary outputs are produced during the pass from the pre-clock
    // register state: compare against golden right after its step().
    for (int id = 0; id < d.net.size(); ++id) {
      if (d.net.node(id).kind == NodeKind::kOutput) {
        ASSERT_EQ(folded.value(id), golden.value(id))
            << "level " << level << " step " << s << " output "
            << d.net.node(id).name;
      }
    }
    // Registers commit at the end of the pass: compare post-clock state.
    golden.evaluate();
    for (int id = 0; id < d.net.size(); ++id) {
      if (d.net.node(id).kind == NodeKind::kFlipFlop) {
        ASSERT_EQ(folded.value(id), golden.value(id))
            << "level " << level << " step " << s << " register "
            << d.net.node(id).name;
      }
    }
  }
}

TEST(FoldedEquivalence, Ex1MotivationalAllLevels) {
  Design d = make_ex1_motivational();
  for (int level : {0, 1, 2, 3, 4, 6}) {
    expect_folded_equivalent(d, level, 11 + static_cast<std::uint64_t>(level));
  }
}

TEST(FoldedEquivalence, FirLevels) {
  Design d = make_fir(3, 6);
  for (int level : {0, 1, 2, 5}) {
    expect_folded_equivalent(d, level, 23 + static_cast<std::uint64_t>(level));
  }
}

TEST(FoldedEquivalence, MultiPlaneEx2) {
  Design d = make_ex2(5);
  for (int level : {1, 2, 4}) {
    expect_folded_equivalent(d, level, 31 + static_cast<std::uint64_t>(level));
  }
}

TEST(FoldedEquivalence, MultiPlanePipelined) {
  Design d = make_ex2(5);
  ArchParams arch = ArchParams::paper_instance_unbounded_k();
  DesignSchedule sched = schedule_for(d, 2, arch, /*share=*/false);
  ClusteredDesign cd = temporal_cluster(d, sched, arch);
  Simulator golden(d.net);
  FoldedEmulator folded(d, sched, cd);
  golden.reset(false);
  folded.reset(false);
  std::vector<int> inputs;
  for (int id = 0; id < d.net.size(); ++id)
    if (d.net.node(id).kind == NodeKind::kInput) inputs.push_back(id);
  Rng rng(3);
  for (int s = 0; s < 8; ++s) {
    for (int pi : inputs) {
      bool v = rng.next_bool();
      golden.set_input(pi, v);
      folded.set_input(pi, v);
    }
    golden.step();
    golden.evaluate();
    folded.run_pass();
    for (int id = 0; id < d.net.size(); ++id) {
      if (d.net.node(id).kind == NodeKind::kFlipFlop) {
        ASSERT_EQ(folded.value(id), golden.value(id)) << s;
      }
    }
  }
}

TEST(FoldedEquivalence, GateLevelC5315) {
  Design d = make_c5315(5);  // narrower width keeps the test quick
  expect_folded_equivalent(d, 1, 41, 6);
  expect_folded_equivalent(d, 3, 43, 6);
}

class FoldedEquivalenceRandom : public ::testing::TestWithParam<int> {};

TEST_P(FoldedEquivalenceRandom, RandomSequentialDesigns) {
  RandomDagSpec spec;
  spec.num_planes = 1 + GetParam() % 3;
  spec.luts_per_plane = 40 + GetParam() * 11;
  spec.depth = 7;
  spec.regs_per_plane = 6;
  spec.seed = static_cast<std::uint64_t>(GetParam()) * 97 + 1;
  Design d = make_random_design(spec);
  for (int level : {1, 2, 4}) {
    expect_folded_equivalent(
        d, level, 100 + static_cast<std::uint64_t>(GetParam()), 6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FoldedEquivalenceRandom,
                         ::testing::Range(0, 6));

// Randomized differential sweep: for every seed, a fresh random
// sequential design is mapped at level-1, level-2 and no-folding, and the
// folded execution (bitstream emulator) is checked against direct netlist
// simulation on 64 random input vectors per configuration. This is the
// broad-coverage arm of the equivalence suite — the targeted tests above
// pin down specific circuits, this one sweeps the mapping space.
class DifferentialSweep : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialSweep, FoldedBitstreamMatchesNetlistOn64Vectors) {
  const int seed = GetParam();
  RandomDagSpec spec;
  spec.num_planes = 1 + seed % 2;
  spec.luts_per_plane = 24 + seed * 9;
  spec.depth = 5 + seed % 3;
  spec.num_inputs = 10 + seed;
  spec.regs_per_plane = 4 + seed % 4;
  spec.seed = 1000 + static_cast<std::uint64_t>(seed) * 131;
  Design d = make_random_design(spec);
  for (int level : {1, 2, 0}) {  // level-1, level-2, no-folding
    expect_folded_equivalent(d, level,
                             500 + static_cast<std::uint64_t>(seed) * 7 +
                                 static_cast<std::uint64_t>(level),
                             /*steps=*/64);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialSweep, ::testing::Range(0, 5));

TEST(FoldedEmulator, StorageTelemetryMakesSense) {
  Design d = make_ex1(6);
  ArchParams arch = ArchParams::paper_instance_unbounded_k();
  DesignSchedule sched = schedule_for(d, 1, arch);
  ClusteredDesign cd = temporal_cluster(d, sched, arch);
  FoldedEmulator folded(d, sched, cd);
  folded.reset(false);
  folded.run_pass();
  // At level-1 folding every LUT-to-LUT edge crosses a cycle boundary or
  // stays within one level; there must be plenty of stored reads.
  EXPECT_GT(folded.stored_reads(), 0);
  // And at no-folding everything is combinational.
  DesignSchedule flat = schedule_for(d, 0, arch);
  ClusteredDesign cd_flat = temporal_cluster(d, flat, arch);
  FoldedEmulator folded_flat(d, flat, cd_flat);
  folded_flat.reset(false);
  folded_flat.run_pass();
  EXPECT_EQ(folded_flat.stored_reads(), 0);
  EXPECT_GT(folded_flat.combinational_reads(), 0);
}

}  // namespace
}  // namespace nanomap
