// Defect model tests (arch/defect.h) and the defect-tolerant flow
// (DESIGN.md §5j): parser round-trips and diagnostics, deterministic
// seeded fates, RR-graph capacity masking with widen/rebuild agreement,
// placement legality and the bipartite fit check, bitstream-level
// defect verification, and the end-to-end flow invariants — an inactive
// or empty spec is byte-identical to the defect-free flow, an active one
// is thread-count and speculation invariant, and an impossible fabric
// yields the typed kDefectInfeasible error.
#include "arch/defect.h"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "bitstream/bitmap.h"
#include "circuits/benchmarks.h"
#include "flow/nanomap_flow.h"
#include "route/rr_graph.h"
#include "util/check.h"
#include "util/trace.h"

namespace nanomap {
namespace {

// --- spec / hash basics ----------------------------------------------------

TEST(DefectSpec, InactiveByDefaultAndSigZero) {
  DefectSpec spec;
  EXPECT_FALSE(spec.active());
  EXPECT_EQ(spec.content_sig(), 0u);
  // Unused seeds must not distinguish inactive specs.
  spec.seed = 12345;
  EXPECT_EQ(spec.content_sig(), 0u);
  EXPECT_FALSE(defect_smb_dead(spec, 0, 0));
  EXPECT_FALSE(defect_le_dead(spec, 0, 0, 0));
  EXPECT_EQ(defect_broken_tracks(spec, DefectWireKind::kLen1, 0, 0, 0, 8), 0);
}

TEST(DefectSpec, ActiveSigDependsOnSeedAndRates) {
  DefectSpec a;
  a.seed = 1;
  a.le_rate = 0.01;
  DefectSpec b = a;
  EXPECT_NE(a.content_sig(), 0u);
  EXPECT_EQ(a.content_sig(), b.content_sig());
  b.seed = 2;
  EXPECT_NE(a.content_sig(), b.content_sig());
  b = a;
  b.wire_rate = 0.02;
  EXPECT_NE(a.content_sig(), b.content_sig());
}

TEST(DefectSpec, GeneratedFatesAreDeterministicAndRateMonotone) {
  DefectSpec spec;
  spec.seed = 7;
  spec.le_rate = 0.1;
  spec.smb_rate = 0.1;
  spec.wire_rate = 0.1;
  // Same query, same answer — and a full re-query sweep matches itself.
  int dead = 0;
  for (int x = 0; x < 16; ++x)
    for (int y = 0; y < 16; ++y) {
      EXPECT_EQ(defect_smb_dead(spec, x, y), defect_smb_dead(spec, x, y));
      if (defect_smb_dead(spec, x, y)) ++dead;
    }
  // ~10% of 256 sites; generous determinism-not-statistics bounds.
  EXPECT_GT(dead, 5);
  EXPECT_LT(dead, 80);

  DefectSpec all = spec;
  all.le_rate = all.smb_rate = all.wire_rate = 1.0;
  DefectSpec none = spec;
  none.le_rate = none.smb_rate = 0.0;
  none.wire_rate = 1e-18;  // keep the spec active with ~zero fates
  EXPECT_TRUE(defect_smb_dead(all, 3, 4));
  EXPECT_TRUE(defect_le_dead(all, 3, 4, 5));
  EXPECT_EQ(defect_broken_tracks(all, DefectWireKind::kLen4, 3, 4, 1, 6), 6);
  EXPECT_FALSE(defect_smb_dead(none, 3, 4));
  EXPECT_FALSE(defect_le_dead(none, 3, 4, 5));
}

TEST(DefectSpec, BrokenTracksMonotoneUnderWidening) {
  DefectSpec spec;
  spec.seed = 11;
  spec.wire_rate = 0.3;
  for (int kind = 0; kind < 4; ++kind) {
    for (int t = 1; t < 24; ++t) {
      int narrow = defect_broken_tracks(
          spec, static_cast<DefectWireKind>(kind), 2, 3, 1, t);
      int wide = defect_broken_tracks(
          spec, static_cast<DefectWireKind>(kind), 2, 3, 1, t + 1);
      // Appending one more track draw breaks at most one more track: the
      // surviving capacity (tracks - broken) never shrinks.
      EXPECT_GE(wide, narrow);
      EXPECT_LE(wide, narrow + 1);
    }
  }
}

TEST(DefectSpec, ValidateRejectsOutOfRangeRates) {
  DefectSpec spec;
  spec.le_rate = 1.5;
  EXPECT_THROW(spec.validate(), CheckError);
  spec.le_rate = -0.1;
  EXPECT_THROW(spec.validate(), CheckError);
}

// --- text format -----------------------------------------------------------

const char* kMap =
    "defect_map v1\n"
    "# comment\n"
    "grid 4 4\n"
    "smb 1 2\n"
    "le 0 0 3\n"
    "le 3 3 15\n"
    "wire len1 2 3 h 2\n"
    "wire direct 0 1 e 1\n"
    "wire global 3 0 v 1\n";

TEST(DefectMapFormat, ParsesAndRoundTrips) {
  DefectSpec spec = parse_defect_map(kMap);
  ASSERT_NE(spec.map, nullptr);
  EXPECT_TRUE(spec.active());
  EXPECT_EQ(spec.map->grid_width, 4);
  EXPECT_EQ(spec.map->dead_smbs.size(), 1u);
  EXPECT_EQ(spec.map->dead_les.size(), 2u);
  EXPECT_EQ(spec.map->broken_wires.size(), 3u);
  EXPECT_TRUE(defect_smb_dead(spec, 1, 2));
  EXPECT_FALSE(defect_smb_dead(spec, 2, 1));
  EXPECT_TRUE(defect_le_dead(spec, 0, 0, 3));
  EXPECT_EQ(defect_broken_tracks(spec, DefectWireKind::kLen1, 2, 3, 0, 8), 2);
  // A declared break count clamps to the physical track count.
  EXPECT_EQ(defect_broken_tracks(spec, DefectWireKind::kLen1, 2, 3, 0, 1), 1);
  EXPECT_EQ(defect_broken_tracks(spec, DefectWireKind::kLen1, 2, 3, 1, 8), 0);

  DefectSpec again = parse_defect_map(write_defect_map(*spec.map));
  EXPECT_EQ(spec.content_sig(), again.content_sig());
  EXPECT_EQ(write_defect_map(*spec.map), write_defect_map(*again.map));
}

TEST(DefectMapFormat, RejectsMalformedInput) {
  EXPECT_THROW(parse_defect_map(""), InputError);
  EXPECT_THROW(parse_defect_map("defect_map v2\ngrid 2 2\n"), InputError);
  EXPECT_THROW(parse_defect_map("defect_map v1\nsmb 0 0\n"), InputError);
  EXPECT_THROW(parse_defect_map("defect_map v1\ngrid 0 4\n"), InputError);
  EXPECT_THROW(
      parse_defect_map("defect_map v1\ngrid 2 2\ngrid 2 2\n"), InputError);
  EXPECT_THROW(parse_defect_map("defect_map v1\ngrid 2 2\nsmb 2 0\n"),
               InputError);
  EXPECT_THROW(parse_defect_map("defect_map v1\ngrid 2 2\nsmb 0 0\nsmb 0 0\n"),
               InputError);
  EXPECT_THROW(parse_defect_map("defect_map v1\ngrid 2 2\nle 0 0\n"),
               InputError);
  EXPECT_THROW(
      parse_defect_map("defect_map v1\ngrid 2 2\nwire len9 0 0 h 1\n"),
      InputError);
  EXPECT_THROW(
      parse_defect_map("defect_map v1\ngrid 2 2\nwire len1 0 0 e 1\n"),
      InputError);
  EXPECT_THROW(
      parse_defect_map("defect_map v1\ngrid 2 2\nwire len1 0 0 h 0\n"),
      InputError);
  EXPECT_THROW(parse_defect_map("defect_map v1\ngrid 2 2\nbogus 1\n"),
               InputError);
}

TEST(DefectMapFormat, ParsesInlineRates) {
  DefectSpec spec = parse_defect_rates("seed=9,le=0.01,smb=0.005,wire=0.02");
  EXPECT_EQ(spec.seed, 9u);
  EXPECT_DOUBLE_EQ(spec.le_rate, 0.01);
  EXPECT_DOUBLE_EQ(spec.smb_rate, 0.005);
  EXPECT_DOUBLE_EQ(spec.wire_rate, 0.02);
  EXPECT_THROW(parse_defect_rates("le"), InputError);
  EXPECT_THROW(parse_defect_rates("banana=1"), InputError);
  EXPECT_THROW(parse_defect_rates("le=2.0"), InputError);
}

// --- RR graph masking ------------------------------------------------------

ArchParams narrow_arch() {
  ArchParams arch = ArchParams::paper_instance_unbounded_k();
  arch.les_per_mb = 2;
  arch.mbs_per_smb = 2;
  arch.len1_tracks = 4;
  arch.len4_tracks = 2;
  arch.global_tracks = 2;
  return arch;
}

long total_channel_capacity(const RrGraph& rr) {
  long cap = 0;
  for (int n = 0; n < rr.size(); ++n) {
    const RrNode& node = rr.node(n);
    if (node.type != RrType::kOpin && node.type != RrType::kIpin)
      cap += node.capacity;
  }
  return cap;
}

TEST(DefectRrGraph, WireDefectsReduceCapacityAndCompatSig) {
  GridSize grid{4, 4};
  ArchParams clean = narrow_arch();
  ArchParams broken = clean;
  broken.defects.seed = 3;
  broken.defects.wire_rate = 0.25;

  RrGraph rr_clean(grid, clean);
  RrGraph rr_broken(grid, broken);
  ASSERT_EQ(rr_clean.size(), rr_broken.size());
  EXPECT_LT(total_channel_capacity(rr_broken),
            total_channel_capacity(rr_clean));
  EXPECT_NE(rr_clean.compat_sig(), rr_broken.compat_sig());
  EXPECT_FALSE(can_widen_in_place(clean, broken));
  // Same defects, same signature.
  RrGraph rr_again(grid, broken);
  EXPECT_EQ(rr_broken.compat_sig(), rr_again.compat_sig());
}

TEST(DefectRrGraph, WidenInPlaceMatchesFreshBuild) {
  GridSize grid{4, 4};
  ArchParams narrow = narrow_arch();
  narrow.defects.seed = 5;
  narrow.defects.wire_rate = 0.3;
  ArchParams wide = narrow;
  wide.len1_tracks += 3;
  wide.len4_tracks += 2;
  wide.global_tracks += 1;

  RrGraph widened(grid, narrow);
  ASSERT_TRUE(can_widen_in_place(narrow, wide));
  widened.widen_channels(wide);
  RrGraph fresh(grid, wide);
  ASSERT_EQ(widened.size(), fresh.size());
  for (int n = 0; n < fresh.size(); ++n) {
    EXPECT_EQ(widened.node(n).capacity, fresh.node(n).capacity)
        << "node " << n << ": " << fresh.describe(n);
    // Widening never shrinks a channel (capacity monotonicity).
  }
}

// --- placement legality ----------------------------------------------------

// A tiny clustered design: `n` SMBs, each configuring LE slots [0, used).
ClusteredDesign tiny_design(int n, int used) {
  ClusteredDesign cd;
  cd.num_smbs = n;
  cd.num_cycles = 1;
  for (int m = 0; m < n; ++m)
    for (int s = 0; s < used; ++s) cd.place.push_back({m, s});
  return cd;
}

TEST(DefectPlacement, DeadSitesAreIllegalOnlyForAffectedSmbs) {
  ArchParams arch = ArchParams::paper_instance();
  auto map = std::make_shared<DefectMap>();
  map->grid_width = map->grid_height = 2;
  map->dead_smbs.insert({0, 0});  // site 0 dead for everyone
  map->dead_les.insert({1, 0, 0});  // site 1: slot 0 dead
  arch.defects.map = map;

  // SMB 0 uses slots 0..3, SMB 1 uses none (pure feed-through block).
  ClusteredDesign cd = tiny_design(2, 4);
  cd.place.erase(
      std::remove_if(cd.place.begin(), cd.place.end(),
                     [](const LutPlacement& lp) { return lp.smb == 1; }),
      cd.place.end());
  PlaceLegality legal(cd, arch, GridSize{2, 2});
  ASSERT_TRUE(legal.active());
  EXPECT_EQ(legal.dead_smb_sites(), 1);
  EXPECT_FALSE(legal.ok(0, 0));
  EXPECT_FALSE(legal.ok(0, 1));  // dead SMB site rejects every block
  EXPECT_FALSE(legal.ok(1, 0));  // slot 0 is used by SMB 0 and dead here
  EXPECT_TRUE(legal.ok(1, 1));   // SMB 1 uses no slots: dead LE harmless
  EXPECT_TRUE(legal.ok(2, 0));
  EXPECT_TRUE(legal.ok(3, 0));
  EXPECT_TRUE(legal.feasible());
}

TEST(DefectPlacement, FitCheckFailsWhenSitesRunOut) {
  ArchParams arch = ArchParams::paper_instance();
  auto map = std::make_shared<DefectMap>();
  map->grid_width = map->grid_height = 2;
  map->dead_smbs.insert({0, 0});
  map->dead_smbs.insert({1, 0});
  map->dead_smbs.insert({0, 1});
  arch.defects.map = map;
  // 2 SMBs, 1 surviving site: no matching.
  PlaceLegality legal(tiny_design(2, 1), arch, GridSize{2, 2});
  EXPECT_FALSE(legal.feasible());
  // 1 SMB still fits.
  PlaceLegality one(tiny_design(1, 1), arch, GridSize{2, 2});
  EXPECT_TRUE(one.feasible());
}

// --- bitstream verification ------------------------------------------------

FlowOptions defect_flow_options(double rate, std::uint64_t seed) {
  FlowOptions opts;
  opts.arch = ArchParams::paper_instance();
  opts.arch.defects.seed = seed;
  opts.arch.defects.le_rate = rate;
  opts.arch.defects.wire_rate = rate;
  opts.arch.defects.smb_rate = rate / 4.0;
  return opts;
}

TEST(DefectFlow, EmittedBitmapNeverTouchesDefects) {
  Design design = make_benchmark("ex1");
  FlowResult r = run_nanomap(design, defect_flow_options(0.01, 1));
  ASSERT_TRUE(r.feasible) << r.message;
  RrGraph rr(r.placement.placement.grid, r.routed_arch);
  std::string why;
  EXPECT_TRUE(
      verify_bitmap_defects(r.bitmap, r.placement.placement, rr, &why))
      << why;
  EXPECT_TRUE(validate_routing(r.clustered, r.placement.placement, rr,
                               r.routing, &why))
      << why;
}

TEST(DefectFlow, VerifierFlagsConfiguredDeadResources) {
  Design design = make_benchmark("ex1");
  FlowResult r = run_nanomap(design, defect_flow_options(0.0, 0));
  ASSERT_TRUE(r.feasible) << r.message;
  const Placement& placement = r.placement.placement;

  // Declare the site under the first placed SMB dead: the (clean) bitmap
  // now configures LEs on a dead site and the verifier must say so.
  ArchParams poisoned = r.routed_arch;
  auto map = std::make_shared<DefectMap>();
  map->grid_width = placement.grid.width;
  map->grid_height = placement.grid.height;
  map->dead_smbs.insert({placement.x_of(0), placement.y_of(0)});
  poisoned.defects.map = map;
  RrGraph rr(placement.grid, poisoned);
  std::string why;
  EXPECT_FALSE(verify_bitmap_defects(r.bitmap, placement, rr, &why));
  EXPECT_NE(why.find("dead site"), std::string::npos) << why;

  // A dead LE slot that the bitmap configures is also flagged.
  ArchParams le_poisoned = r.routed_arch;
  auto le_map = std::make_shared<DefectMap>();
  le_map->grid_width = placement.grid.width;
  le_map->grid_height = placement.grid.height;
  bool found = false;
  for (int c = 0; c < r.bitmap.num_cycles && !found; ++c) {
    const CycleConfig& cycle = r.bitmap.cycles[static_cast<std::size_t>(c)];
    for (int m = 0; m < r.bitmap.num_smbs && !found; ++m) {
      const SmbConfig& smb = cycle.smbs[static_cast<std::size_t>(m)];
      for (std::size_t s = 0; s < smb.les.size() && !found; ++s) {
        if (smb.les[s].lut_used || smb.les[s].ff_write_mask != 0) {
          le_map->dead_les.insert(
              {placement.x_of(m), placement.y_of(m), static_cast<int>(s)});
          found = true;
        }
      }
    }
  }
  ASSERT_TRUE(found);
  le_poisoned.defects.map = le_map;
  RrGraph le_rr(placement.grid, le_poisoned);
  EXPECT_FALSE(verify_bitmap_defects(r.bitmap, placement, le_rr, &why));
  EXPECT_NE(why.find("dead LE slot"), std::string::npos) << why;
}

// --- end-to-end flow invariants --------------------------------------------

TEST(DefectFlow, ZeroRateEmptyMapReproducesDefectFreeFlow) {
  Design design = make_benchmark("ex1");
  FlowOptions clean_opts;
  clean_opts.arch = ArchParams::paper_instance();
  FlowResult clean = run_nanomap(design, clean_opts);
  ASSERT_TRUE(clean.feasible) << clean.message;

  // An *empty* loaded map is active (content signature, cache keys) but
  // masks nothing, so every stage must still produce identical bytes.
  FlowOptions empty_opts = clean_opts;
  auto map = std::make_shared<DefectMap>();
  map->grid_width = map->grid_height = 64;
  empty_opts.arch.defects.map = map;
  ASSERT_TRUE(empty_opts.arch.defects.active());
  FlowResult empty = run_nanomap(design, empty_opts);
  ASSERT_TRUE(empty.feasible) << empty.message;

  EXPECT_EQ(clean.placement.placement.site_of_smb,
            empty.placement.placement.site_of_smb);
  EXPECT_EQ(clean.delay_ns, empty.delay_ns);
  EXPECT_EQ(serialize_bitmap(clean.bitmap), serialize_bitmap(empty.bitmap));
}

TEST(DefectFlow, ActiveDefectsAreThreadAndSpeculationInvariant) {
  Design design = make_benchmark("ex1");
  FlowOptions base = defect_flow_options(0.02, 3);
  base.threads = 1;
  FlowResult want = run_nanomap(design, base);
  ASSERT_TRUE(want.feasible) << want.message;

  FlowOptions threads4 = base;
  threads4.threads = 4;
  FlowOptions no_spec = base;
  no_spec.router.speculative = false;
  for (const FlowOptions& opts : {threads4, no_spec}) {
    FlowResult got = run_nanomap(design, opts);
    ASSERT_TRUE(got.feasible) << got.message;
    EXPECT_EQ(want.placement.placement.site_of_smb,
              got.placement.placement.site_of_smb);
    EXPECT_EQ(want.delay_ns, got.delay_ns);
    EXPECT_EQ(serialize_bitmap(want.bitmap), serialize_bitmap(got.bitmap));
  }
}

TEST(DefectFlow, ImpossibleFabricYieldsTypedReject) {
  Design design = make_benchmark("ex1");
  FlowOptions opts;
  opts.arch = ArchParams::paper_instance();
  opts.arch.defects.seed = 1;
  opts.arch.defects.smb_rate = 1.0;  // every SMB site dead
  FlowResult r = run_nanomap(design, opts);
  EXPECT_FALSE(r.feasible);
  EXPECT_EQ(r.error_kind, FlowErrorKind::kDefectInfeasible);
  bool saw_typed_event = false;
  for (const FlowEvent& e : r.diagnostics.events)
    if (e.kind == FlowErrorKind::kDefectInfeasible) saw_typed_event = true;
  EXPECT_TRUE(saw_typed_event);
}

TEST(DefectFlow, TraceCountersCoverDefectSites) {
  Design design = make_benchmark("ex1");
  FlowOptions opts = defect_flow_options(0.02, 3);
  opts.collect_trace = true;
  FlowResult r = run_nanomap(design, opts);
  ASSERT_TRUE(r.feasible) << r.message;
  std::set<std::string> sites;
  for (const TraceCounterRow& row : Trace::instance().snapshot().counters)
    sites.insert(row.site);
  EXPECT_TRUE(sites.count("defect.wire_masked"));
  EXPECT_TRUE(sites.count("defect.smb_masked"));
  EXPECT_TRUE(sites.count("defect.le_masked"));
  EXPECT_TRUE(sites.count("route.defect_avoided"));
}

}  // namespace
}  // namespace nanomap
