#include <gtest/gtest.h>

#include "circuits/random_dag.h"
#include "map/flowmap.h"
#include "netlist/simulate.h"
#include "util/rng.h"

namespace nanomap {
namespace {

// Verifies the mapped LUT network computes the same outputs as the gate
// network on the given number of input vectors (exhaustive when the input
// count allows, pseudo-random otherwise).
void expect_equivalent(const GateNetwork& g, const FlowMapResult& mapped,
                       int max_vectors = 256) {
  Simulator sim(mapped.net);
  std::vector<int> lut_inputs;
  std::vector<int> lut_outputs;
  for (int id = 0; id < mapped.net.size(); ++id) {
    if (mapped.net.node(id).kind == NodeKind::kInput)
      lut_inputs.push_back(id);
    if (mapped.net.node(id).kind == NodeKind::kOutput)
      lut_outputs.push_back(id);
  }
  ASSERT_EQ(static_cast<int>(lut_inputs.size()), g.num_inputs());
  ASSERT_EQ(static_cast<int>(lut_outputs.size()), g.num_outputs());

  const int n = g.num_inputs();
  const bool exhaustive = n <= 12 && (1 << n) <= max_vectors;
  const int vectors = exhaustive ? (1 << n) : max_vectors;
  Rng rng(99);
  for (int v = 0; v < vectors; ++v) {
    std::vector<bool> in(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      in[static_cast<std::size_t>(i)] =
          exhaustive ? ((v >> i) & 1) != 0 : rng.next_bool();
    }
    std::vector<bool> gate_out = g.evaluate(in);
    for (int i = 0; i < n; ++i)
      sim.set_input(lut_inputs[static_cast<std::size_t>(i)],
                    in[static_cast<std::size_t>(i)]);
    sim.evaluate();
    for (std::size_t o = 0; o < lut_outputs.size(); ++o) {
      ASSERT_EQ(sim.value(lut_outputs[o]), gate_out[o])
          << "vector " << v << " output " << o;
    }
  }
}

TEST(FlowMap, SingleGate) {
  GateNetwork g;
  int a = g.add_input("a");
  int b = g.add_input("b");
  g.add_output("o", g.add_gate(GateOp::kNand, "g", {a, b}));
  FlowMapResult r = flowmap(g, 4);
  EXPECT_EQ(r.num_luts, 1);
  EXPECT_EQ(r.depth, 1);
  expect_equivalent(g, r);
}

TEST(FlowMap, CollapsesSmallConeIntoOneLut) {
  // 3-input cone of 2-input gates fits a single 4-LUT.
  GateNetwork g;
  int a = g.add_input("a");
  int b = g.add_input("b");
  int c = g.add_input("c");
  int t1 = g.add_gate(GateOp::kAnd, "t1", {a, b});
  int t2 = g.add_gate(GateOp::kOr, "t2", {t1, c});
  int t3 = g.add_gate(GateOp::kXor, "t3", {t2, a});
  g.add_output("o", t3);
  FlowMapResult r = flowmap(g, 4);
  EXPECT_EQ(r.depth, 1);
  EXPECT_EQ(r.num_luts, 1);
  expect_equivalent(g, r);
}

TEST(FlowMap, DepthOptimalOnBalancedXorTree) {
  // 16-input XOR tree: depth-optimal 4-LUT mapping has depth 2.
  GateNetwork g;
  std::vector<int> layer;
  for (int i = 0; i < 16; ++i) layer.push_back(g.add_input("i"));
  while (layer.size() > 1) {
    std::vector<int> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2)
      next.push_back(g.add_gate(GateOp::kXor, "x", {layer[i], layer[i + 1]}));
    layer = next;
  }
  g.add_output("o", layer[0]);
  FlowMapResult r = flowmap(g, 4);
  EXPECT_EQ(r.depth, 2);
  expect_equivalent(g, r, 512);
}

TEST(FlowMap, AdderChainEquivalence) {
  GateNetwork g;
  Bus a, b;
  for (int i = 0; i < 4; ++i) a.push_back(g.add_input("a"));
  for (int i = 0; i < 4; ++i) b.push_back(g.add_input("b"));
  int cout = -1;
  Bus sum = build_gate_adder(g, a, b, "add", &cout);
  for (int bit : sum) g.add_output("s", bit);
  g.add_output("c", cout);
  FlowMapResult r = flowmap(g, 4);
  expect_equivalent(g, r);
  // A 4-bit ripple adder in 4-LUTs needs depth <= 4 and FlowMap should not
  // exceed the trivial per-gate mapping depth.
  EXPECT_LE(r.depth, 4);
  EXPECT_GE(r.depth, 2);
}

TEST(FlowMap, LabelsAreMonotoneAlongEdges) {
  GateNetwork g = make_random_gates(10, 120, 6, 42);
  FlowMapResult r = flowmap(g, 4);
  for (int id = 0; id < g.size(); ++id) {
    const Gate& gate = g.gate(id);
    if (gate.op == GateOp::kInput) {
      EXPECT_EQ(r.labels[static_cast<std::size_t>(id)], 0);
      continue;
    }
    for (int f : gate.fanins) {
      EXPECT_GE(r.labels[static_cast<std::size_t>(id)],
                r.labels[static_cast<std::size_t>(f)]);
    }
  }
}

TEST(FlowMap, MappedDepthEqualsMaxOutputLabel) {
  GateNetwork g = make_random_gates(12, 150, 8, 7);
  FlowMapResult r = flowmap(g, 4);
  int max_label = 0;
  for (int po : g.output_ids())
    max_label = std::max(max_label, r.labels[static_cast<std::size_t>(po)]);
  EXPECT_EQ(r.depth, max_label);
}

TEST(FlowMap, FaninBoundRespected) {
  GateNetwork g = make_random_gates(14, 200, 8, 13);
  for (int k = 2; k <= 6; ++k) {
    FlowMapResult r = flowmap(g, k);
    for (const LutNode& n : r.net.nodes()) {
      if (n.kind == NodeKind::kLut) {
        EXPECT_LE(static_cast<int>(n.fanins.size()), k);
      }
    }
  }
}

TEST(FlowMap, LargerKNeverIncreasesDepth) {
  GateNetwork g = make_random_gates(12, 180, 6, 21);
  int prev_depth = 1 << 20;
  for (int k = 2; k <= 6; ++k) {
    FlowMapResult r = flowmap(g, k);
    EXPECT_LE(r.depth, prev_depth) << "k=" << k;
    prev_depth = r.depth;
  }
}

class FlowMapRandomEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(FlowMapRandomEquivalence, RandomNetworksMatch) {
  std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  GateNetwork g = make_random_gates(10, 80 + GetParam() * 17, 5, seed);
  FlowMapResult r = flowmap(g, 4);
  expect_equivalent(g, r, 1024);
  // Mapping never expands LUT count beyond gate count.
  EXPECT_LE(r.num_luts, g.num_logic_gates());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowMapRandomEquivalence,
                         ::testing::Range(1, 13));

TEST(FlowMap, RejectsUnsupportedK) {
  GateNetwork g;
  int a = g.add_input("a");
  g.add_output("o", g.add_gate(GateOp::kNot, "n", {a}));
  EXPECT_THROW(flowmap(g, 1), CheckError);
  EXPECT_THROW(flowmap(g, 7), CheckError);
}

TEST(FlowMap, PlaneParameterPropagates) {
  GateNetwork g;
  int a = g.add_input("a");
  int b = g.add_input("b");
  g.add_output("o", g.add_gate(GateOp::kAnd, "g", {a, b}));
  FlowMapResult r = flowmap(g, 4, /*plane=*/2);
  for (const LutNode& n : r.net.nodes()) {
    if (n.kind == NodeKind::kLut) {
      EXPECT_EQ(n.plane, 2);
    }
  }
}

}  // namespace
}  // namespace nanomap
