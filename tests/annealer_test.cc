// The annealer's incremental cost kernel: cached bounding boxes with
// boundary-occupancy counts must track a from-scratch recompute exactly —
// including through swap moves, rollbacks, shrink-edge rescans, and nets
// that touch the same SMB with more than one pin.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "circuits/benchmarks.h"
#include "core/temporal_cluster.h"
#include "netlist/plane.h"
#include "place/annealer.h"
#include "place/net_bbox.h"

namespace nanomap {
namespace {

// A synthetic clustered design with controllable fanout; no netlist
// behind it — the annealer only reads num_smbs and nets.
ClusteredDesign make_random_cd(int smbs, int nets, int max_fanout,
                               std::uint64_t seed) {
  ClusteredDesign cd;
  cd.num_cycles = 1;
  cd.num_smbs = smbs;
  Rng rng(seed);
  for (int i = 0; i < nets; ++i) {
    PlacedNet pn;
    pn.driver_smb = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(smbs)));
    pn.criticality = rng.next_double();
    int fanout = rng.next_int(1, max_fanout);
    std::set<int> sinks;
    while (static_cast<int>(sinks.size()) < fanout) {
      int s = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(smbs)));
      if (s != pn.driver_smb) sinks.insert(s);
    }
    pn.sink_smbs.assign(sinks.begin(), sinks.end());
    cd.nets.push_back(std::move(pn));
  }
  return cd;
}

Placement random_placement(const ClusteredDesign& cd, Rng* rng) {
  Placement p;
  p.grid = size_grid_for(cd.num_smbs);
  std::vector<int> sites(static_cast<std::size_t>(p.grid.sites()));
  for (int i = 0; i < p.grid.sites(); ++i)
    sites[static_cast<std::size_t>(i)] = i;
  rng->shuffle(sites);
  p.site_of_smb.assign(sites.begin(),
                       sites.begin() + cd.num_smbs);
  return p;
}

TEST(NetBoxCache, MatchesScratchUnderRandomSinglePinMoves) {
  ClusteredDesign cd = make_random_cd(24, 40, 6, 11);
  Rng rng(3);
  Placement p = random_placement(cd, &rng);
  NetBoxCache cache;
  cache.init(cd, p, nullptr);

  // Incident lists so every move updates exactly the nets it affects.
  std::vector<std::vector<int>> nets_of(
      static_cast<std::size_t>(cd.num_smbs));
  for (std::size_t i = 0; i < cd.nets.size(); ++i) {
    nets_of[static_cast<std::size_t>(cd.nets[i].driver_smb)].push_back(
        static_cast<int>(i));
    for (int s : cd.nets[i].sink_smbs)
      nets_of[static_cast<std::size_t>(s)].push_back(static_cast<int>(i));
  }

  std::set<int> used(p.site_of_smb.begin(), p.site_of_smb.end());
  for (int step = 0; step < 2000; ++step) {
    int smb = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(cd.num_smbs)));
    int to = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(p.grid.sites())));
    if (used.count(to)) continue;  // single-SMB moves only in this fuzz
    int from = p.site_of_smb[static_cast<std::size_t>(smb)];
    int fx = from % p.grid.width, fy = from / p.grid.width;
    int tx = to % p.grid.width, ty = to / p.grid.width;
    used.erase(from);
    used.insert(to);
    p.site_of_smb[static_cast<std::size_t>(smb)] = to;
    cache.set_smb_xy(smb, tx, ty);
    for (int n : nets_of[static_cast<std::size_t>(smb)])
      cache.move_pins(n, fx, fy, tx, ty, 1);
    // Every box — updated or not — must equal the from-scratch scan,
    // boundary counts included.
    for (int n = 0; n < cache.size(); ++n)
      ASSERT_EQ(cache.box(n), cache.compute_box(n)) << "net " << n
                                                    << " step " << step;
  }
}

TEST(NetBoxCache, ShrinkEdgeRescanIsExact) {
  // Hand-built: driver at xmax alone; moving it inward forces the
  // last-pin-on-a-shrinking-edge rescan path.
  ClusteredDesign cd;
  cd.num_cycles = 1;
  cd.num_smbs = 3;
  PlacedNet pn;
  pn.driver_smb = 0;
  pn.sink_smbs = {1, 2};
  cd.nets.push_back(pn);

  Placement p;
  p.grid = {5, 5};
  // smb0 (4,0), smb1 (0,0), smb2 (2,2).
  p.site_of_smb = {4, 0, 12};
  NetBoxCache cache;
  cache.init(cd, p, nullptr);
  EXPECT_EQ(cache.box(0).xmax, 4);
  EXPECT_EQ(cache.box(0).on_xmax, 1);

  // Move smb0 to (1,1): xmax edge loses its only pin.
  p.site_of_smb[0] = 6;
  cache.set_smb_xy(0, 1, 1);
  cache.move_pins(0, 4, 0, 1, 1, 1);
  EXPECT_EQ(cache.box(0), cache.compute_box(0));
  EXPECT_EQ(cache.box(0).xmax, 2);
  EXPECT_EQ(cache.box(0).hpwl(), 2 + 2);
}

// Full-anneal audit: the final incremental cost must equal a from-scratch
// placement_cost recompute *bit-exactly* (same per-net products, same
// net-order reduction), and the running delta-accumulated cost must have
// stayed within rounding of it.
TEST(Annealer, FullAnnealCostMatchesScratchBitExactly) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    ClusteredDesign cd = make_random_cd(30, 80, 8, 100 + seed);
    Rng rng(seed);
    Placement init = random_placement(cd, &rng);
    const double tw = 0.8;
    Annealer a(cd, init, tw, &rng);
    a.run(1.0);
    double scratch = placement_cost(cd, a.placement(), tw);
    EXPECT_EQ(a.cost(), scratch) << "seed " << seed;  // bit-exact
    EXPECT_NEAR(a.running_cost(), scratch,
                1e-6 * std::max(1.0, scratch))
        << "seed " << seed;
  }
}

// Regression for the nets_of_ double-count bug: an SMB incident to the
// same net via several pins (driver + sink — a self-feeding net — or
// repeated sink pins) used to contribute that net twice to the move
// delta, so the running cost drifted away from the true objective.
TEST(Annealer, SelfFeedingNetDoesNotDriftRunningCost) {
  ClusteredDesign cd;
  cd.num_cycles = 1;
  cd.num_smbs = 4;
  PlacedNet self;
  self.driver_smb = 0;
  self.sink_smbs = {0, 1, 2};  // driver's own SMB again + two real sinks
  self.criticality = 0.5;
  cd.nets.push_back(self);
  PlacedNet dup;
  dup.driver_smb = 1;
  dup.sink_smbs = {3, 3};  // repeated sink pin
  dup.criticality = 0.25;
  cd.nets.push_back(dup);
  PlacedNet plain;
  plain.driver_smb = 2;
  plain.sink_smbs = {3};
  cd.nets.push_back(plain);

  Rng rng(9);
  Placement init = random_placement(cd, &rng);
  Annealer a(cd, init, 0.8, &rng);
  a.run(4.0);
  double scratch = placement_cost(cd, a.placement(), 0.8);
  EXPECT_EQ(a.cost(), scratch);
  EXPECT_NEAR(a.running_cost(), scratch, 1e-9 * std::max(1.0, scratch));
}

// Real-circuit end-to-end: the incremental kernel through the two-step
// placement of a paper benchmark still lands on the exact objective.
TEST(Annealer, BenchmarkCircuitCostMatchesScratch) {
  Design d = make_benchmark("ex1");
  CircuitParams p = extract_circuit_params(d.net);
  ArchParams arch = ArchParams::paper_instance_unbounded_k();
  DesignSchedule sched;
  sched.folding = make_folding_config(p, 1);
  sched.planes_share = true;
  for (int plane = 0; plane < p.num_plane; ++plane) {
    PlaneScheduleGraph g = build_schedule_graph(d, plane, sched.folding);
    sched.plane_results.push_back(schedule_plane(g, arch));
    sched.graphs.push_back(std::move(g));
  }
  ClusteredDesign cd = temporal_cluster(d, sched, arch);
  Rng rng(42);
  Placement init = random_placement(cd, &rng);
  Annealer a(cd, init, 0.8, &rng);
  a.run(1.0);
  EXPECT_EQ(a.cost(), placement_cost(cd, a.placement(), 0.8));
}

}  // namespace
}  // namespace nanomap
