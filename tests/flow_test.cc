// End-to-end flow behaviour under the paper's optimization objectives.
#include <gtest/gtest.h>

#include "circuits/benchmarks.h"
#include "flow/nanomap_flow.h"

namespace nanomap {
namespace {

TEST(Flow, NoFoldingBaselineUsesOneLePerLut) {
  Design d = make_ex1(6);
  FlowOptions opts;
  opts.arch = ArchParams::paper_instance_unbounded_k();
  opts.forced_folding_level = 0;
  FlowResult r = run_nanomap(d, opts);
  ASSERT_TRUE(r.feasible) << r.message;
  EXPECT_TRUE(r.folding.no_folding());
  EXPECT_GE(r.num_les, d.net.num_luts());
  EXPECT_TRUE(r.routing.success);
}

TEST(Flow, MinDelayWithoutAreaConstraintIsNoFolding) {
  Design d = make_ex1(6);
  FlowOptions opts;
  opts.arch = ArchParams::paper_instance_unbounded_k();
  opts.objective = Objective::kMinDelay;
  FlowResult r = run_nanomap(d, opts);
  ASSERT_TRUE(r.feasible) << r.message;
  EXPECT_TRUE(r.folding.no_folding());
}

TEST(Flow, MinDelayUnderAreaConstraintRespectsIt) {
  Design d = make_ex1(8);
  FlowOptions opts;
  opts.arch = ArchParams::paper_instance_unbounded_k();
  opts.objective = Objective::kMinDelay;
  opts.area_constraint_le = 60;
  FlowResult r = run_nanomap(d, opts);
  ASSERT_TRUE(r.feasible) << r.message;
  EXPECT_LE(r.num_les, 60);
  EXPECT_FALSE(r.folding.no_folding());
}

TEST(Flow, TighterAreaConstraintFoldsDeeper) {
  Design d = make_fir(3, 8);
  FlowOptions opts;
  opts.arch = ArchParams::paper_instance_unbounded_k();
  opts.objective = Objective::kMinDelay;
  opts.area_constraint_le = 150;
  FlowResult loose = run_nanomap(d, opts);
  opts.area_constraint_le = 60;
  FlowResult tight = run_nanomap(d, opts);
  ASSERT_TRUE(loose.feasible) << loose.message;
  ASSERT_TRUE(tight.feasible) << tight.message;
  EXPECT_LE(loose.num_les, 150);
  EXPECT_LE(tight.num_les, 60);
  // A tighter budget forces at least as much folding (the paper's
  // iterative refinement descends the folding level).
  EXPECT_LE(tight.folding.level, loose.folding.level);
}

TEST(Flow, MinAreaFoldsMaximally) {
  Design d = make_ex1(8);
  FlowOptions opts;
  opts.arch = ArchParams::paper_instance_unbounded_k();
  opts.objective = Objective::kMinArea;
  FlowResult r = run_nanomap(d, opts);
  ASSERT_TRUE(r.feasible) << r.message;
  EXPECT_EQ(r.folding.level, 1);
  EXPECT_LT(r.num_les, d.net.num_luts() / 4);
}

TEST(Flow, MinAreaUnderDelayConstraint) {
  Design d = make_ex1(8);
  FlowOptions opts;
  opts.arch = ArchParams::paper_instance_unbounded_k();
  opts.objective = Objective::kMinArea;
  // First learn the unconstrained (max-folding) delay, then require ~30%
  // faster and check a larger folding level is chosen.
  FlowResult free = run_nanomap(d, opts);
  ASSERT_TRUE(free.feasible);
  opts.delay_constraint_ns = free.delay_ns * 0.7;
  FlowResult constrained = run_nanomap(d, opts);
  if (constrained.feasible) {
    EXPECT_LE(constrained.delay_ns, opts.delay_constraint_ns);
    EXPECT_GT(constrained.folding.level, free.folding.level);
    EXPECT_GE(constrained.num_les, free.num_les);
  }
}

TEST(Flow, MeetBothConstraints) {
  Design d = make_ex1(8);
  FlowOptions opts;
  opts.arch = ArchParams::paper_instance_unbounded_k();
  // Learn a feasible point first.
  opts.objective = Objective::kAreaDelayProduct;
  FlowResult at = run_nanomap(d, opts);
  ASSERT_TRUE(at.feasible);
  opts.objective = Objective::kMeetBoth;
  opts.area_constraint_le = at.num_les + 10;
  opts.delay_constraint_ns = at.delay_ns * 1.2;
  FlowResult r = run_nanomap(d, opts);
  ASSERT_TRUE(r.feasible) << r.message;
  EXPECT_LE(r.num_les, opts.area_constraint_le);
  EXPECT_LE(r.delay_ns, opts.delay_constraint_ns);
}

TEST(Flow, ImpossibleConstraintsReportedInfeasible) {
  Design d = make_ex1(8);
  FlowOptions opts;
  opts.arch = ArchParams::paper_instance_unbounded_k();
  opts.objective = Objective::kMeetBoth;
  opts.area_constraint_le = 5;     // less than any folding can reach
  opts.delay_constraint_ns = 0.1;  // absurd
  FlowResult r = run_nanomap(d, opts);
  EXPECT_FALSE(r.feasible);
  EXPECT_FALSE(r.message.empty());
}

TEST(Flow, NramDepthLimitsFoldingLevel) {
  Design d = make_ex1(8);  // depth ~15
  FlowOptions opts;
  opts.objective = Objective::kMinArea;
  opts.arch = ArchParams::paper_instance();
  opts.arch.num_reconf = 4;  // very shallow NRAM
  FlowResult r = run_nanomap(d, opts);
  ASSERT_TRUE(r.feasible) << r.message;
  // #configs = stages <= 4.
  EXPECT_LE(r.folding.total_configs(r.params.num_plane), 4);
  EXPECT_TRUE(r.bitmap.fits_nram(opts.arch));
}

TEST(Flow, ForcedLevelHonored) {
  Design d = make_ex1(6);
  FlowOptions opts;
  opts.arch = ArchParams::paper_instance_unbounded_k();
  opts.forced_folding_level = 3;
  FlowResult r = run_nanomap(d, opts);
  ASSERT_TRUE(r.feasible) << r.message;
  EXPECT_EQ(r.folding.level, 3);
}

TEST(Flow, DeterministicForSeed) {
  Design d = make_ex1(6);
  FlowOptions opts;
  opts.arch = ArchParams::paper_instance_unbounded_k();
  opts.seed = 99;
  FlowResult a = run_nanomap(d, opts);
  FlowResult b = run_nanomap(d, opts);
  ASSERT_TRUE(a.feasible);
  EXPECT_EQ(a.num_les, b.num_les);
  EXPECT_DOUBLE_EQ(a.delay_ns, b.delay_ns);
  EXPECT_EQ(a.folding.level, b.folding.level);
}

TEST(Flow, PipelinedPlanesDontShare) {
  Design d = make_ex2(8);
  FlowOptions shared, pipelined;
  shared.arch = pipelined.arch = ArchParams::paper_instance_unbounded_k();
  shared.forced_folding_level = pipelined.forced_folding_level = 2;
  pipelined.planes_share = false;
  FlowResult rs = run_nanomap(d, shared);
  FlowResult rp = run_nanomap(d, pipelined);
  ASSERT_TRUE(rs.feasible) << rs.message;
  ASSERT_TRUE(rp.feasible) << rp.message;
  // Pipelined mapping keeps all planes resident: strictly more LEs, but
  // fewer configuration cycles.
  EXPECT_GT(rp.num_les, rs.num_les);
  EXPECT_LT(rp.bitmap.num_cycles, rs.bitmap.num_cycles);
}

TEST(Flow, EstimateOnlyModeSkipsPhysical) {
  Design d = make_ex1(6);
  FlowOptions opts;
  opts.arch = ArchParams::paper_instance_unbounded_k();
  opts.run_physical = false;
  FlowResult r = run_nanomap(d, opts);
  ASSERT_TRUE(r.feasible);
  EXPECT_GT(r.delay_ns, 0.0);
  EXPECT_TRUE(r.routing.nets.empty());
  EXPECT_EQ(r.bitmap.num_cycles, 0);
}

TEST(Flow, AtProductBeatsNoFoldingOnAllBenchmarks) {
  for (const char* name : {"ex1", "FIR"}) {
    Design d = make_benchmark(name);
    FlowOptions opts;
    opts.arch = ArchParams::paper_instance_unbounded_k();
    opts.objective = Objective::kAreaDelayProduct;
    FlowResult folded = run_nanomap(d, opts);
    opts.forced_folding_level = 0;
    FlowResult flat = run_nanomap(d, opts);
    ASSERT_TRUE(folded.feasible) << folded.message;
    ASSERT_TRUE(flat.feasible) << flat.message;
    EXPECT_LT(folded.area_delay_product(), flat.area_delay_product())
        << name;
  }
}

TEST(Flow, UseFdsOffStillLegal) {
  Design d = make_ex1(6);
  FlowOptions opts;
  opts.arch = ArchParams::paper_instance_unbounded_k();
  opts.use_fds = false;
  opts.forced_folding_level = 1;
  FlowResult r = run_nanomap(d, opts);
  ASSERT_TRUE(r.feasible) << r.message;
  EXPECT_TRUE(r.routing.success);
}

TEST(Flow, SummaryMentionsKeyNumbers) {
  Design d = make_ex1(4);
  FlowOptions opts;
  opts.arch = ArchParams::paper_instance();
  FlowResult r = run_nanomap(d, opts);
  ASSERT_TRUE(r.feasible);
  std::string s = summarize(r);
  EXPECT_NE(s.find("LEs"), std::string::npos);
  EXPECT_NE(s.find("delay"), std::string::npos);
}

}  // namespace
}  // namespace nanomap
