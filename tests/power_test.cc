#include <gtest/gtest.h>

#include "circuits/benchmarks.h"
#include "flow/nanomap_flow.h"
#include "flow/power.h"

namespace nanomap {
namespace {

struct Mapped {
  FlowResult flow;
  PowerReport power;
};

Mapped map_and_measure(const Design& d, int level) {
  Mapped m;
  FlowOptions opts;
  opts.arch = ArchParams::paper_instance_unbounded_k();
  opts.forced_folding_level = level;
  m.flow = run_nanomap(d, opts);
  EXPECT_TRUE(m.flow.feasible) << m.flow.message;
  m.power = estimate_power(d, m.flow.schedule, m.flow.clustered,
                           m.flow.routing, m.flow.bitmap, m.flow.timing,
                           opts.arch);
  return m;
}

TEST(Power, ComponentsSumAndArePositive) {
  Design d = make_ex1(6);
  Mapped m = map_and_measure(d, 2);
  EXPECT_GT(m.power.logic_pj, 0.0);
  EXPECT_GT(m.power.wire_pj, 0.0);
  EXPECT_GT(m.power.reconfig_pj, 0.0);
  EXPECT_NEAR(m.power.energy_per_pass_pj,
              m.power.logic_pj + m.power.wire_pj + m.power.reconfig_pj,
              1e-9);
  EXPECT_GT(m.power.power_mw, 0.0);
}

TEST(Power, NoFoldingPaysNoReconfigEnergy) {
  Design d = make_ex1(6);
  Mapped flat = map_and_measure(d, 0);
  EXPECT_DOUBLE_EQ(flat.power.reconfig_pj, 0.0);
  Mapped folded = map_and_measure(d, 1);
  EXPECT_GT(folded.power.reconfig_pj, 0.0);
}

TEST(Power, NramHasNoConfigStandby) {
  Design d = make_ex1(6);
  Mapped m = map_and_measure(d, 1);
  EXPECT_DOUBLE_EQ(m.power.config_standby_nram_mw, 0.0);
  EXPECT_GT(m.power.config_standby_sram_mw, 0.0);
}

TEST(Power, LogicEnergyScalesWithCircuitSize) {
  Design small = make_ex1(4);
  Design big = make_ex1(10);
  Mapped ms = map_and_measure(small, 1);
  Mapped mb = map_and_measure(big, 1);
  EXPECT_GT(mb.power.logic_pj, ms.power.logic_pj * 2);
}

TEST(Power, ActivityScalesDynamicEnergy) {
  Design d = make_ex1(6);
  FlowOptions opts;
  opts.arch = ArchParams::paper_instance_unbounded_k();
  opts.forced_folding_level = 1;
  FlowResult r = run_nanomap(d, opts);
  ASSERT_TRUE(r.feasible);
  PowerParams low, high;
  low.switching_activity = 0.1;
  high.switching_activity = 0.4;
  PowerReport pl = estimate_power(d, r.schedule, r.clustered, r.routing,
                                  r.bitmap, r.timing, opts.arch, low);
  PowerReport ph = estimate_power(d, r.schedule, r.clustered, r.routing,
                                  r.bitmap, r.timing, opts.arch, high);
  EXPECT_NEAR(ph.logic_pj, 4.0 * pl.logic_pj, 1e-6);
  EXPECT_NEAR(ph.wire_pj, 4.0 * pl.wire_pj, 1e-6);
  // Reconfiguration energy is activity-independent.
  EXPECT_NEAR(ph.reconfig_pj, pl.reconfig_pj, 1e-9);
}

TEST(BitmapDelta, SingleCycleHasNoTransitions) {
  Design d = make_ex1(4);
  Mapped flat = map_and_measure(d, 0);
  BitmapDeltaStats s = bitmap_delta_stats(
      flat.flow.bitmap, ArchParams::paper_instance_unbounded_k());
  EXPECT_DOUBLE_EQ(s.avg_changed_bits, 0.0);
  EXPECT_EQ(s.max_changed_bits, 0u);
}

TEST(BitmapDelta, FoldedBitmapChangesBetweenCycles) {
  Design d = make_ex1(4);
  Mapped folded = map_and_measure(d, 1);
  ArchParams arch = ArchParams::paper_instance_unbounded_k();
  BitmapDeltaStats s = bitmap_delta_stats(folded.flow.bitmap, arch);
  EXPECT_GT(s.avg_changed_bits, 0.0);
  EXPECT_GE(static_cast<double>(s.max_changed_bits), s.avg_changed_bits);
  EXPECT_GT(s.per_cycle_bits, 0u);
}

}  // namespace
}  // namespace nanomap
