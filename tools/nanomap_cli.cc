// nanomap — command-line driver for the NanoMap flow.
//
//   nanomap <input> [options]
//
// Inputs (by extension): .nmap (structural netlist), .blif (LUT netlist),
// .bench (ISCAS gate netlist), .vhd/.vhdl (structural VHDL subset), or
// "bench:<name>" for a bundled
// benchmark (ex1, FIR, ex2, c5315, Biquad, Paulin, ASPP4).
//
// Options:
//   --objective at|delay|area|both   optimization objective (default at)
//   --area N          area constraint in LEs
//   --delay NS        delay constraint in ns
//   --level L         force folding level L (0 = no folding)
//   --k N             NRAM configuration sets (0 = unbounded; default 16)
//   --arch FILE       load architecture parameters (key = value file)
//   --defects SPEC    map onto an imperfect fabric (docs/FORMATS.md):
//                     either a defect-map file, or inline seeded rates
//                     "seed=S,le=R,smb=R,wire=R" (any subset of rates).
//                     The flow places/routes around the dead resources;
//                     if the circuit cannot fit the surviving fabric the
//                     run exits 1 with error kind defect-infeasible.
//   --dump-arch       print the resolved architecture parameters and exit
//   --no-share        planes may not share resources (pipelined design)
//   --seed S          random seed for placement/routing
//   --threads N       worker threads (0 = hardware concurrency; never
//                     changes results, only wall-clock time)
//   --restarts N      independent placement restarts (best placement wins)
//   --route-batch N   nets per PathFinder rip-up batch (1 = sequential)
//   --route-spec[=off] speculative parallel routing of the sequential
//                     schedule (default on; results identical either way)
//   --explore[=serial|parallel]
//                     evaluate ALL candidate folding levels as flow jobs
//                     (concurrent chains in parallel mode, the default)
//                     and pick the winner by the objective over measured
//                     results, instead of the serial first-feasible
//                     search. Byte-identical results in both modes at any
//                     --threads; the run report gains an `explore`
//                     section (per-candidate outcomes + Pareto front).
//   --pareto          with --explore (implied): print the Pareto front
//                     over #LEs x delay x folding cycles
//   --out FILE        write the configuration bitmap (binary)
//   --blif-out FILE   write the elaborated LUT netlist as BLIF
//   --sweep           run netlist cleanup (DCE/CSE/constants) first
//   --power           print the power/energy report
//   --report          print per-stage usage and wire statistics
//   --report=json FILE  write the machine-readable run report (schema in
//                     docs/FORMATS.md). Wall-clock fields are zeroed so
//                     the file is byte-deterministic for a fixed seed;
//                     add --trace to include real timings instead.
//   --trace           collect stage spans/counters and pretty-print the
//                     stage tree with timings to stderr (docs/
//                     OBSERVABILITY.md). Never changes results.
//   --explain-failure print the typed retry/escalation diagnostics trail
//   --fault PLAN      arm deterministic fault injection ("site:N[:kind]",
//                     see util/fault.h; NM_FAULT env var is the fallback)
//   --quiet           only print the one-line summary
//
// Exit codes (documented in README):
//   0  feasible mapping produced
//   1  clean infeasible (constraints / congestion; see --explain-failure)
//   2  input error (bad file, bad option value, bad arch params)
//   3  internal error or resource exhaustion (CheckError / bad_alloc)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "util/fault.h"
#include "util/trace.h"

#include "flow/explore.h"
#include "flow/nanomap_flow.h"
#include "rtl/blif.h"
#include "arch/arch_file.h"
#include "arch/defect.h"
#include "flow/power.h"
#include "netlist/optimize.h"
#include "serve/cache.h"

using namespace nanomap;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <input.{nmap,blif,vhd}|bench:NAME> [--objective "
               "at|delay|area|both] [--area N] [--delay NS] [--level L] "
               "[--k N] [--defects FILE|seed=S,le=R,smb=R,wire=R] "
               "[--no-share] [--seed S] [--threads N] "
               "[--restarts N] [--route-batch N] [--route-spec[=off]] "
               "[--explore[=serial|parallel]] [--pareto] [--out FILE] "
               "[--blif-out FILE] [--report] [--report=json FILE] "
               "[--trace] [--explain-failure] "
               "[--fault SITE:N[:KIND]] [--quiet]\n",
               argv0);
  return 2;
}

// Exit-code taxonomy: the flow returns clean results with a typed error
// kind instead of throwing, so the code comes from the shared
// exit_code_for(FlowResult) (flow/nanomap_flow.h) — the same mapping the
// nanomap-server response lines carry. The catch blocks below only see
// input/internal errors raised outside run_nanomap (parsing, file IO,
// option validation).
constexpr int kExitFeasible = 0;
constexpr int kExitInputError = 2;
constexpr int kExitInternalError = 3;

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  std::string input = argv[1];
  FlowOptions opts;
  opts.arch = ArchParams::paper_instance();
  std::string out_path, blif_out, report_json;
  bool report = false, quiet = false, do_sweep = false, power = false;
  bool explain_failure = false, trace = false;
  bool explore_enabled = false, print_pareto = false;
  ExploreOptions eopts;
  if (const char* env_fault = std::getenv("NM_FAULT"))
    opts.fault_plan = env_fault;

  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--objective") {
      std::string v = next();
      if (v == "at") opts.objective = Objective::kAreaDelayProduct;
      else if (v == "delay") opts.objective = Objective::kMinDelay;
      else if (v == "area") opts.objective = Objective::kMinArea;
      else if (v == "both") opts.objective = Objective::kMeetBoth;
      else return usage(argv[0]);
    } else if (arg == "--area") {
      opts.area_constraint_le = std::atoi(next().c_str());
    } else if (arg == "--delay") {
      opts.delay_constraint_ns = std::atof(next().c_str());
    } else if (arg == "--level") {
      opts.forced_folding_level = std::atoi(next().c_str());
    } else if (arg == "--k") {
      opts.arch.num_reconf = std::atoi(next().c_str());
    } else if (arg == "--arch") {
      try {
        opts.arch = parse_arch_file(next(), opts.arch);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return kExitInputError;
      }
    } else if (arg == "--defects") {
      std::string v = next();
      try {
        opts.arch.defects = v.find('=') != std::string::npos
                                ? parse_defect_rates(v)
                                : parse_defect_map_file(v);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return kExitInputError;
      }
    } else if (arg == "--dump-arch") {
      std::printf("%s", write_arch(opts.arch).c_str());
      return 0;
    } else if (arg == "--no-share") {
      opts.planes_share = false;
    } else if (arg == "--seed") {
      opts.seed = static_cast<std::uint64_t>(std::atoll(next().c_str()));
    } else if (arg == "--threads") {
      opts.threads = std::atoi(next().c_str());
    } else if (arg == "--restarts") {
      opts.placement.restarts = std::atoi(next().c_str());
    } else if (arg == "--route-batch") {
      opts.router.batch_size = std::atoi(next().c_str());
    } else if (arg == "--route-spec") {
      opts.router.speculative = true;
    } else if (arg == "--route-spec=off") {
      opts.router.speculative = false;
    } else if (arg == "--explore" || arg == "--explore=parallel") {
      explore_enabled = true;
      eopts.mode = ExploreMode::kParallel;
    } else if (arg == "--explore=serial") {
      explore_enabled = true;
      eopts.mode = ExploreMode::kSerial;
    } else if (arg == "--pareto") {
      explore_enabled = true;
      print_pareto = true;
    } else if (arg == "--fault") {
      opts.fault_plan = next();
    } else if (arg == "--explain-failure") {
      explain_failure = true;
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--blif-out") {
      blif_out = next();
    } else if (arg == "--sweep") {
      do_sweep = true;
    } else if (arg == "--power") {
      power = true;
    } else if (arg == "--report") {
      report = true;
    } else if (arg == "--report=json") {
      report_json = next();
    } else if (arg == "--trace") {
      trace = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return usage(argv[0]);
    }
  }

  try {
    Design design = load_design_spec(input);
    if (do_sweep) {
      SweepResult swept = sweep(design.net);
      if (!quiet && swept.stats.total_removed() > 0)
        std::printf("sweep: removed %d dead LUTs, %d dead FFs, merged %d "
                    "duplicates, folded %d constant inputs\n",
                    swept.stats.dead_luts_removed,
                    swept.stats.dead_flipflops_removed,
                    swept.stats.duplicates_merged,
                    swept.stats.constants_folded);
      design.net = std::move(swept.net);
      design.refresh_module_stats();
    }
    if (!quiet) {
      CircuitParams p = extract_circuit_params(design.net);
      std::printf("loaded '%s': %d plane(s), %d LUTs, %d FFs, depth %d\n",
                  design.name.c_str(), p.num_plane, p.total_luts,
                  p.total_flipflops, p.depth_max);
      std::printf("target: %s\n", describe(opts.arch).c_str());
    }
    if (!blif_out.empty()) {
      std::ofstream out(blif_out);
      if (!out) throw InputError("cannot write " + blif_out);
      out << write_blif(design);
      if (!quiet) std::printf("wrote netlist to %s\n", blif_out.c_str());
    }

    opts.collect_trace = trace || !report_json.empty();
    FlowResult r;
    if (explore_enabled) {
      ExploreResult ex = run_nanomap_explore(design, opts, eopts);
      if (!quiet)
        std::printf("explore (%s): %d candidates, %d feasible, %d warm "
                    "starts, %zu on the Pareto front\n",
                    ex.explore.mode.c_str(), ex.explore.candidates,
                    ex.explore.feasible_candidates, ex.explore.warm_starts,
                    ex.explore.pareto.size());
      if (print_pareto) {
        std::printf("pareto front (#LEs x delay x cycles):\n");
        for (int idx : ex.explore.pareto) {
          const ExploreCandidateOutcome& o =
              ex.explore.outcomes[static_cast<std::size_t>(idx)];
          std::printf("  [%2d] %-12s %5d LEs  %7.2f ns  %3d cycles%s\n",
                      o.index, o.label.c_str(), o.num_les, o.delay_ns,
                      o.num_cycles, o.winner ? "  <- winner" : "");
        }
      }
      r = std::move(ex.winner);
      r.report = std::move(ex.report);  // the explore-aware report
    } else {
      r = run_nanomap(design, opts);
    }
    if (trace)
      std::fprintf(stderr, "%s",
                   Trace::instance().snapshot().render().c_str());
    if (!report_json.empty()) {
      std::ofstream out(report_json);
      if (!out) throw InputError("cannot write " + report_json);
      // Timings are masked unless --trace asked for them, so the file is
      // byte-deterministic for a fixed (input, seed) at any --threads.
      out << r.report.to_json(/*include_timings=*/trace);
      if (!quiet)
        std::printf("wrote run report to %s\n", report_json.c_str());
    }
    if (!r.feasible) {
      std::printf("INFEASIBLE [%s]: %s\n",
                  flow_error_kind_name(r.error_kind), r.message.c_str());
      if (explain_failure && !r.diagnostics.empty())
        std::printf("diagnostics trail:\n%s",
                    r.diagnostics.to_string().c_str());
      return exit_code_for(r);
    }
    std::printf("%s\n", summarize(r).c_str());
    if (explain_failure && !r.diagnostics.empty())
      std::printf("diagnostics trail (recovered along the way):\n%s",
                  r.diagnostics.to_string().c_str());

    if (report) {
      std::printf("\nper-stage usage:\n");
      for (std::size_t p = 0; p < r.plane_schedules.size(); ++p) {
        const FdsResult& fr = r.plane_schedules[p];
        for (std::size_t s = 1; s < fr.le_count.size(); ++s)
          std::printf("  plane %zu stage %2zu: %4d LUTs %4d FFs -> %4d LEs\n",
                      p, s, fr.lut_count[s], fr.ff_count[s], fr.le_count[s]);
      }
      std::printf("area: %d LEs, %d SMBs, %.0f um^2\n", r.num_les,
                  r.num_smbs, r.area_um2);
      std::printf("wires: direct %ld, len1 %ld, len4 %ld, global %ld\n",
                  r.routing.usage.direct, r.routing.usage.len1,
                  r.routing.usage.len4, r.routing.usage.global);
      std::printf("timing: folding cycle %.3f ns, delay %.2f ns "
                  "(critical cycle %d)\n",
                  r.folding_cycle_ns, r.delay_ns, r.timing.critical_cycle);
      std::printf("bitmap: %d configs, %zu bits; flow tried %d levels in "
                  "%.2f s\n",
                  r.bitmap.num_cycles, r.bitmap.total_bits, r.levels_tried,
                  r.cpu_seconds);
      std::printf("critical path (cycle %d):\n", r.timing.critical_cycle);
      for (const PathElement& e : r.timing.critical_path) {
        std::printf("  %-24s arrival %7.1f ps\n",
                    design.net.node(e.node).name.c_str(), e.arrival_ps);
      }
    }

    if (power) {
      PowerReport pw =
          estimate_power(design, r.schedule, r.clustered, r.routing,
                         r.bitmap, r.timing, opts.arch);
      std::printf("power: %.1f pJ/pass (logic %.1f + wire %.1f + reconfig "
                  "%.1f), %.2f mW dynamic; config standby: SRAM-equiv "
                  "%.4f mW, NRAM 0 mW\n",
                  pw.energy_per_pass_pj, pw.logic_pj, pw.wire_pj,
                  pw.reconfig_pj, pw.power_mw, pw.config_standby_sram_mw);
    }

    if (!out_path.empty()) {
      std::vector<std::uint8_t> bytes = serialize_bitmap(r.bitmap);
      std::ofstream out(out_path, std::ios::binary);
      if (!out) throw InputError("cannot write " + out_path);
      out.write(reinterpret_cast<const char*>(bytes.data()),
                static_cast<std::streamsize>(bytes.size()));
      if (!quiet)
        std::printf("wrote %zu-byte bitmap to %s\n", bytes.size(),
                    out_path.c_str());
    }
    return kExitFeasible;
  } catch (const InputError& e) {
    std::fprintf(stderr, "input error: %s\n", e.what());
    return kExitInputError;
  } catch (const CheckError& e) {
    std::fprintf(stderr, "internal error: %s\n", e.what());
    return kExitInternalError;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitInternalError;
  }
}
