// nanomap-server — concurrent batch front end for the NanoMap flow
// (docs/SERVING.md).
//
//   nanomap-server [options] < jobs.jsonl > responses.jsonl
//
// Reads one JSON job object per input line from stdin, runs the jobs on a
// pool of concurrent flow workers sharing parsed-circuit / arch / RR-graph
// caches, and writes one JSON response line per job to stdout *in input
// order*. A run summary (throughput, latency percentiles, cache hit
// rates) goes to stderr.
//
// Options:
//   --workers N     concurrent flow jobs (default 1)
//   --threads N     total thread budget split across workers via
//                   slice_pool (0 = hardware concurrency). Never changes
//                   response bytes, only wall-clock time.
//   --seed S        default seed for jobs without their own (default 42)
//   --arch FILE     base architecture file; per-job "arch" applies on top
//   --defects SPEC  base defect spec (file or "seed=S,le=R,..."); a job's
//                   own "defects" key replaces it
//   --timings       emit real elapsed_ms / report timings instead of the
//                   deterministic zeros
//   --trace         collect process-wide trace counters (including the
//                   serve.cache.* / serve.jobs_* sites) and render them
//                   to stderr after the stream ends
//   --quiet         suppress the stderr summary
//
// Exit codes: 0 once the input stream is fully processed (per-job
// failures are typed response lines, not process failures), 2 for a bad
// command line or base configuration. Per-job exit codes ride inside the
// responses and follow the CLI taxonomy (README "Exit codes").
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "util/trace.h"

#include "arch/arch_file.h"
#include "arch/defect.h"
#include "serve/server.h"

using namespace nanomap;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--workers N] [--threads N] [--seed S] "
               "[--arch FILE] [--defects FILE|seed=S,le=R,smb=R,wire=R] "
               "[--timings] [--trace] [--quiet] < jobs.jsonl\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  ServeOptions opts;
  bool quiet = false, trace = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--workers") {
      opts.workers = std::atoi(next().c_str());
      if (opts.workers < 1) {
        std::fprintf(stderr, "--workers must be >= 1\n");
        return 2;
      }
    } else if (arg == "--threads") {
      opts.threads = std::atoi(next().c_str());
    } else if (arg == "--seed") {
      opts.default_seed =
          static_cast<std::uint64_t>(std::atoll(next().c_str()));
    } else if (arg == "--arch") {
      try {
        opts.base_arch = parse_arch_file(next(), opts.base_arch);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
      }
    } else if (arg == "--defects") {
      std::string v = next();
      try {
        opts.base_arch.defects = v.find('=') != std::string::npos
                                     ? parse_defect_rates(v)
                                     : parse_defect_map_file(v);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
      }
    } else if (arg == "--timings") {
      opts.include_timings = true;
    } else if (arg == "--trace") {
      trace = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return usage(argv[0]);
    }
  }

  ServeSummary summary;
  {
    TraceScope scope(trace);
    summary = serve_jobs(std::cin, std::cout, opts);
    if (trace)
      std::fprintf(stderr, "%s",
                   Trace::instance().snapshot().render().c_str());
  }

  if (!quiet) {
    std::fprintf(stderr,
                 "served %ld job(s) in %.2f s (%.2f jobs/s): %ld done "
                 "(%ld feasible), %ld rejected, %ld deadline-expired, "
                 "%ld failed\n",
                 summary.jobs, summary.wall_seconds, summary.jobs_per_sec,
                 summary.done, summary.feasible, summary.rejected,
                 summary.deadline_expired, summary.failed);
    std::fprintf(stderr,
                 "latency p50 %.1f ms, p99 %.1f ms; cache hits/misses: "
                 "design %ld/%ld, arch %ld/%ld, rr %ld/%ld\n",
                 summary.p50_ms, summary.p99_ms, summary.cache.design_hits,
                 summary.cache.design_misses, summary.cache.arch_hits,
                 summary.cache.arch_misses, summary.cache.rr_hits,
                 summary.cache.rr_misses);
  }
  return 0;
}
