#!/usr/bin/env python3
"""Check that every intra-repo markdown link resolves.

Scans all tracked *.md files for inline links and images
(``[text](target)``), skips external schemes (http/https/mailto), and
verifies that

* a relative path target exists (resolved against the linking file),
* an in-file anchor (``#section``) matches a heading's GitHub-style
  slug in the target file.

Run from anywhere inside the repo:

    python3 tools/check_markdown_links.py

Exit code 0 when every link resolves, 1 otherwise (one line per broken
link: ``file:line: broken link -> target``). CI runs this in the docs
job; keep it dependency-free.
"""

import os
import re
import subprocess
import sys

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
EXTERNAL_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")
# Inline code spans: links inside backticks are illustrative, not links.
CODE_SPAN_RE = re.compile(r"`[^`]*`")


def repo_root():
    out = subprocess.run(
        ["git", "rev-parse", "--show-toplevel"],
        capture_output=True, text=True, check=True)
    return out.stdout.strip()


def tracked_markdown(root):
    out = subprocess.run(
        ["git", "ls-files", "*.md", "--cached", "--others",
         "--exclude-standard"],
        capture_output=True, text=True, check=True, cwd=root)
    return [line for line in out.stdout.splitlines() if line]


def github_slug(heading):
    """GitHub's heading -> anchor slug transformation."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip())
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # linked headings
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(path):
    slugs = set()
    counts = {}
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for line in f:
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = HEADING_RE.match(line)
            if not m:
                continue
            slug = github_slug(m.group(1))
            n = counts.get(slug, 0)
            counts[slug] = n + 1
            slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def check_file(root, relpath, slug_cache):
    path = os.path.join(root, relpath)
    errors = []
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            stripped = CODE_SPAN_RE.sub("", line)
            for m in LINK_RE.finditer(stripped):
                target = m.group(1)
                if EXTERNAL_RE.match(target):
                    continue
                target, _, anchor = target.partition("#")
                if target:
                    dest = os.path.normpath(
                        os.path.join(os.path.dirname(path), target))
                else:
                    dest = path  # pure in-file anchor
                if not os.path.exists(dest):
                    errors.append((relpath, lineno, m.group(1)))
                    continue
                if anchor and dest.endswith(".md"):
                    if dest not in slug_cache:
                        slug_cache[dest] = heading_slugs(dest)
                    if anchor not in slug_cache[dest]:
                        errors.append((relpath, lineno, m.group(1)))
    return errors


def main():
    root = repo_root()
    slug_cache = {}
    errors = []
    files = tracked_markdown(root)
    for relpath in files:
        errors.extend(check_file(root, relpath, slug_cache))
    for relpath, lineno, target in errors:
        print(f"{relpath}:{lineno}: broken link -> {target}")
    print(f"checked {len(files)} markdown files, "
          f"{len(errors)} broken link(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
